"""Command-line interface for the sweep runner.

Usage (with ``PYTHONPATH=src``)::

    python -m repro.runner list [--tag TAG] [--backend B]
    python -m repro.runner run NAME [NAME ...] [--backend B] [options]
    python -m repro.runner sweep (--tag TAG ... | --all | NAME ...) [options]
    python -m repro.runner explore [--space S] [--strategy NAME] [options]
    python -m repro.runner serve [--workload W] [--arrival A] [--policy P]
                                 [--load R[,R...]] [options]
    python -m repro.runner worker --spool TARGET [--poll S] [--idle-exit S]
    python -m repro.runner spoold --spool DIR [--host H] [--port P]
    python -m repro.runner spool TARGET (--status | --gc [--max-age S]) [--json]
    python -m repro.runner cache (--show | --clear | --prune)

Common options: ``--backend {engine,analytic}`` (event-driven simulation vs
the closed-form fast model), ``--executor {serial,pool,workqueue}`` (the
execution policy; default derived from ``--workers``), ``--workers N``
(parallel worker processes; ``auto`` resolves to the machine's CPU count),
``--spool TARGET`` (the work-queue spool -- a shared directory or a
``tcp://host:port`` job-server URL -- required by ``--executor workqueue``),
``--cache-dir D`` (default ``.repro-cache``), ``--no-cache``, ``--force``
(ignore cache hits but refresh entries), ``--json FILE`` (dump outcomes as
JSON).

``worker`` attaches a detached work-queue worker to a spool: it claims jobs
published by ``--executor workqueue`` sweeps (from this host or any other
sharing the filesystem -- or any host that can reach the ``spoold`` server,
for a ``tcp://`` spool), executes them, and publishes results -- see
``repro.runner.executors`` for the protocol.

``spoold`` serves a local spool directory over TCP
(:mod:`repro.runner.netqueue`): submitters and workers pass the printed
``tcp://host:port`` URL as their ``--spool`` and need no shared filesystem.
``spool`` inspects any spool target: ``--status`` renders queue depth,
claim ages, and per-worker throughput; ``--gc`` sweeps orphaned
result/claim/heartbeat/scratch files older than ``--max-age``.

``explore`` searches a named design space on the analytic proxy backend and
re-certifies the resulting Pareto frontier on the cycle-level engine
(:mod:`repro.explore`); ``--list-spaces`` describes the catalogue.
``--proxy batched`` evaluates whole strategy generations through the kind's
batch runner (identical payloads, much faster, bypasses the proxy cache);
``--weights latency=..,traffic=..,utilization=..`` ranks the frontier (and
halving survivors) by weighted scalarisation instead of non-domination.

``serve`` simulates live traffic -- open-loop (exponential / bursty /
diurnal arrivals at ``--load`` req/s) or closed-loop (``--clients`` clients
with ``--think`` think time) -- through a batching policy into the analytic
accelerator model (:mod:`repro.serve`); several ``--load`` values sweep a
throughput-latency curve, and ``--recertify M`` engine-verifies the M most
frequent dispatch shapes against the lower-bound + byte-identical-traffic
contract.  ``--list-workloads`` describes the workload catalogue.

All user errors (unknown scenario names, unsupported backends, invalid
worker counts, empty selections) exit with status 2 and a one-line message
on stderr -- never a traceback.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import List, Optional

from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from .executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkQueueExecutor,
)
from .scenarios import BACKENDS, DEFAULT_BACKEND, REGISTRY
from .sweep import SweepOutcome, run_sweep

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """argparse type for strict counts (``--budget``, ...): an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workers_argument(text: str) -> int:
    """argparse type for ``--workers``: an integer >= 1, or ``auto``.

    ``auto`` resolves to ``os.cpu_count()`` at parse time (1 when the count
    cannot be determined), so sweeps scale to the machine without the
    invocation hard-coding its core count.
    """
    if text.strip().lower() == "auto":
        return os.cpu_count() or 1
    return _positive_int(text)


def _chunk_size_argument(text: str):
    """argparse type for ``--chunk-size``: an integer >= 1, ``auto`` (the
    adaptive points-per-job heuristic), or ``off`` (per-scenario jobs; the
    pre-chunking behaviour).  Omitting the flag keeps the default policy:
    whole-generation batching on serial executors, auto-sharding on
    distributed ones."""
    lowered = text.strip().lower()
    if lowered in ("auto", "off"):
        return lowered
    return _positive_int(text)


def _seed_argument(text: str) -> Optional[int]:
    """argparse type for ``--seed``: an integer, or ``random`` for a fresh
    entropy-drawn seed (the effective value is always echoed in the output
    and the JSON report, so any run can be replayed by passing it back)."""
    if text.strip().lower() == "random":
        return None
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid seed {text!r} (expected an integer or 'random')"
        ) from None


def _positive_float(text: str) -> float:
    """argparse type for durations (``--poll``, ...): a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number {text!r}") from None
    if not value > 0 or not math.isfinite(value):
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def _loads_argument(text: str) -> List[float]:
    """argparse type for ``--load``: comma-separated offered loads > 0."""
    loads = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise argparse.ArgumentTypeError(f"empty offered load in {text!r}")
        loads.append(_positive_float(part))
    return loads


#: user-facing objective names accepted by ``--weights``, mapped to the
#: payload keys the explorer's objectives actually read.
_WEIGHT_ALIASES = {
    "latency": "latency_s",
    "traffic": "offchip_bytes",
    "offchip_traffic": "offchip_bytes",
    "utilization": "utilization",
    "throughput": "pipeline_tasks_per_s",
    "area": "area_luts",
    "energy": "energy_j",
}


def _weights_argument(text: str) -> dict:
    """argparse type for ``--weights``: ``latency=2,traffic=1,...``."""
    weights: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, separator, raw = part.partition("=")
        name = name.strip().lower()
        if not separator:
            raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {part!r}")
        if name not in _WEIGHT_ALIASES:
            raise argparse.ArgumentTypeError(
                f"unknown objective {name!r}; known: "
                f"{', '.join(sorted(_WEIGHT_ALIASES))}"
            )
        try:
            value = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid weight {raw!r} for {name!r}"
            ) from None
        if not math.isfinite(value):
            raise argparse.ArgumentTypeError(
                f"weights must be finite, got {name}={value:g}"
            )
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"weights must be non-negative, got {name}={value:g}"
            )
        key = _WEIGHT_ALIASES[name]
        if key in weights:
            raise argparse.ArgumentTypeError(f"objective {name!r} given more than once")
        weights[key] = value
    if not weights:
        raise argparse.ArgumentTypeError("no weights given")
    if not any(weights.values()):
        raise argparse.ArgumentTypeError("at least one weight must be positive")
    return weights


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Declarative scenario sweeps over the RSN simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument(
        "--tag",
        action="append",
        default=None,
        help="only scenarios carrying this tag (repeatable)",
    )
    list_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="only scenarios supporting this backend",
    )

    def add_executor_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--executor",
            choices=EXECUTOR_NAMES,
            default=None,
            help="execution policy: serial (in-process), pool "
            "(local multiprocessing pool), or workqueue "
            "(distributed fan-out over a shared --spool "
            "directory); default: derived from --workers "
            "(pool when > 1, else serial)",
        )
        cmd.add_argument(
            "--workers",
            type=_workers_argument,
            default=1,
            metavar="N|auto",
            help="worker processes: an integer >= 1, or 'auto' "
            "for this machine's CPU count; with --executor "
            "workqueue this is the number of *local* "
            "workers the sweep contributes (default: 1, "
            "serial)",
        )
        cmd.add_argument(
            "--spool",
            default=None,
            help="work-queue spool shared with `python -m "
            "repro.runner worker` processes: a shared "
            "directory, or tcp://host:port of a "
            "`spoold` job server (required by "
            "--executor workqueue)",
        )

    def add_chunk_size_option(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--chunk-size",
            type=_chunk_size_argument,
            default=None,
            metavar="N|auto|off",
            help="how batch-capable kinds shard into chunk "
            "jobs: an explicit points-per-chunk, 'auto' "
            "(adaptive, ~32 jobs per generation, aligned "
            "to the design space's trailing axes), or "
            "'off' (one scalar job per scenario); "
            "default: whole-generation batching on "
            "serial executors, auto-sharding on "
            "distributed ones",
        )

    def add_exec_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--backend",
            choices=BACKENDS,
            default=DEFAULT_BACKEND,
            help="execution backend: cycle-level event-driven "
            "engine, or the analytic fast model "
            f"(default: {DEFAULT_BACKEND})",
        )
        add_executor_options(cmd)
        add_chunk_size_option(cmd)
        cmd.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        cmd.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the result cache entirely",
        )
        cmd.add_argument(
            "--force",
            action="store_true",
            help="re-run even on cache hits (refreshes entries)",
        )
        cmd.add_argument(
            "--json",
            dest="json_path",
            default=None,
            help="write outcomes to this JSON file",
        )

    run_cmd = sub.add_parser("run", help="run scenarios by name")
    run_cmd.add_argument("names", nargs="+", help="scenario names")
    add_exec_options(run_cmd)

    sweep_cmd = sub.add_parser("sweep", help="run a tagged or full sweep")
    sweep_cmd.add_argument("names", nargs="*", help="extra scenario names")
    sweep_cmd.add_argument(
        "--tag",
        action="append",
        default=None,
        help="include every scenario with this tag (repeatable)",
    )
    sweep_cmd.add_argument(
        "--all", action="store_true", help="run the entire catalogue"
    )
    add_exec_options(sweep_cmd)

    explore_cmd = sub.add_parser(
        "explore",
        help="design-space exploration: analytic-proxy search, "
        "engine-verified Pareto frontier",
    )
    explore_cmd.add_argument(
        "--space",
        default="encoder",
        help="design space to search (default: encoder; " "see --list-spaces)",
    )
    explore_cmd.add_argument(
        "--strategy",
        default="halving",
        help="search strategy: grid, random, or halving " "(default: halving)",
    )
    explore_cmd.add_argument(
        "--budget",
        type=_positive_int,
        default=200,
        help="total analytic proxy evaluations " "(default: 200)",
    )
    explore_cmd.add_argument(
        "--verify-top",
        type=int,
        default=8,
        help="frontier points to re-certify on the "
        "engine backend; 0 skips verification "
        "(default: 8)",
    )
    explore_cmd.add_argument(
        "--seed",
        type=_seed_argument,
        default=0,
        metavar="N|random",
        help="RNG seed for random/halving sampling; "
        "'random' draws a fresh seed and echoes it "
        "for replay (default: 0)",
    )
    explore_cmd.add_argument(
        "--proxy",
        choices=("sweep", "batched"),
        default="sweep",
        help="analytic proxy path: per-point scenario "
        "sweep, or batched generation evaluation "
        "(fastest; sharded into chunk jobs across "
        "the executor, cached per chunk) "
        "(default: sweep)",
    )
    explore_cmd.add_argument(
        "--weights",
        type=_weights_argument,
        default=None,
        metavar="latency=W,traffic=W,...",
        help="weighted scalarisation of the objectives "
        "(latency, traffic, utilization, throughput, "
        "area, energy): rank the frontier (and "
        "halving survivors) by weighted normalised "
        "score instead of non-domination rank",
    )
    add_executor_options(explore_cmd)
    add_chunk_size_option(explore_cmd)
    explore_cmd.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory " f"(default: {DEFAULT_CACHE_DIR})",
    )
    explore_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    explore_cmd.add_argument(
        "--force", action="store_true", help="re-run even on cache hits"
    )
    explore_cmd.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the full exploration report to this " "JSON file",
    )
    explore_cmd.add_argument(
        "--report",
        dest="report_path",
        default=None,
        help="write the rendered frontier/verification " "tables to this text file",
    )
    explore_cmd.add_argument(
        "--list-spaces",
        action="store_true",
        help="describe the design-space catalogue and " "exit",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="serving-layer simulation: live traffic through a batching "
        "policy into the analytic accelerator model",
    )
    serve_cmd.add_argument(
        "--workload",
        default="encoder-mix",
        help="request-mix workload (default: encoder-mix; "
        "see --list-workloads)",
    )
    serve_cmd.add_argument(
        "--arrival",
        choices=("exponential", "bursty", "diurnal", "closed"),
        default="exponential",
        help="arrival process: open-loop exponential/"
        "bursty/diurnal at --load req/s, or a closed "
        "loop of --clients think-time clients "
        "(default: exponential)",
    )
    serve_cmd.add_argument(
        "--policy",
        choices=("static", "dynamic", "continuous"),
        default="dynamic",
        help="batching policy (default: dynamic)",
    )
    serve_cmd.add_argument(
        "--load",
        type=_loads_argument,
        default=[100.0],
        metavar="R[,R...]",
        help="offered load(s) in req/s; several values "
        "sweep a throughput-latency curve "
        "(default: 100)",
    )
    serve_cmd.add_argument(
        "--requests",
        type=_positive_int,
        default=10000,
        help="requests to simulate per load point " "(default: 10000)",
    )
    serve_cmd.add_argument(
        "--batch-max",
        type=_positive_int,
        default=8,
        help="largest batch a dispatch may take " "(default: 8)",
    )
    serve_cmd.add_argument(
        "--window",
        type=_positive_float,
        default=0.02,
        metavar="SECONDS",
        help="dynamic-policy batching window " "(default: 0.02)",
    )
    serve_cmd.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=1024,
        help="admission-queue bound; arrivals beyond it "
        "are dropped (default: 1024)",
    )
    serve_cmd.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="drop requests that queue longer than this " "(default: no timeout)",
    )
    serve_cmd.add_argument(
        "--users",
        type=_positive_int,
        default=1000,
        help="distinct users behind open-loop traffic "
        "(per-user request mixes; default: 1000)",
    )
    serve_cmd.add_argument(
        "--clients",
        type=_positive_int,
        default=64,
        help="closed-loop clients (default: 64)",
    )
    serve_cmd.add_argument(
        "--think",
        type=_positive_float,
        default=0.1,
        metavar="SECONDS",
        help="closed-loop mean think time (default: 0.1)",
    )
    serve_cmd.add_argument(
        "--seed",
        type=_seed_argument,
        default=0,
        metavar="N|random",
        help="traffic seed; 'random' draws a fresh seed "
        "and echoes it for replay (default: 0)",
    )
    serve_cmd.add_argument(
        "--recertify",
        type=int,
        default=2,
        metavar="M",
        help="engine-verify the M most frequent (class, "
        "batch) dispatches against the lower-bound + "
        "byte-identical-traffic contract; 0 skips "
        "(default: 2)",
    )
    add_executor_options(serve_cmd)
    serve_cmd.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    serve_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    serve_cmd.add_argument(
        "--force", action="store_true", help="re-run even on cache hits"
    )
    serve_cmd.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the serving report (all load points, "
        "curve, certification) to this JSON file",
    )
    serve_cmd.add_argument(
        "--report",
        dest="report_path",
        default=None,
        help="write the rendered tables to this text file",
    )
    serve_cmd.add_argument(
        "--list-workloads",
        action="store_true",
        help="describe the workload catalogue and exit",
    )

    worker_cmd = sub.add_parser(
        "worker", help="attach a work-queue worker to a spool"
    )
    worker_cmd.add_argument(
        "--spool",
        required=True,
        help="spool directory shared with the submitting "
        "sweep (any host on the same filesystem), or "
        "tcp://host:port of a `spoold` job server "
        "(no shared filesystem needed)",
    )
    worker_cmd.add_argument(
        "--poll",
        type=_positive_float,
        default=0.2,
        metavar="SECONDS",
        help="sleep between claim attempts while the " "spool is empty (default: 0.2)",
    )
    worker_cmd.add_argument(
        "--idle-exit",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="exit once the spool has been empty this "
        "long (default: run until interrupted)",
    )
    worker_cmd.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        help="exit after this many jobs (default: " "unbounded)",
    )
    worker_cmd.add_argument(
        "--worker-id",
        default=None,
        help="spool-visible worker identity (default: " "<hostname>-<pid>)",
    )

    spoold_cmd = sub.add_parser(
        "spoold",
        help="serve a spool directory over TCP (the network "
        "work-queue transport; no shared filesystem needed)",
    )
    spoold_cmd.add_argument(
        "--spool",
        required=True,
        help="local directory holding the served queue state "
        "(created if missing; restarting a server on the "
        "same directory resumes the queue)",
    )
    spoold_cmd.add_argument(
        "--host",
        default="127.0.0.1",
        help="address to bind (default: 127.0.0.1; use "
        "0.0.0.0 to accept remote workers)",
    )
    spoold_cmd.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0, an OS-assigned free "
        "port, echoed on startup)",
    )

    spool_cmd = sub.add_parser(
        "spool", help="inspect (--status) or garbage-collect (--gc) a spool"
    )
    spool_cmd.add_argument(
        "target",
        help="spool directory, or tcp://host:port of a " "`spoold` job server",
    )
    spool_group = spool_cmd.add_mutually_exclusive_group()
    spool_group.add_argument(
        "--status",
        action="store_true",
        help="render queue depth, claim ages, and per-worker "
        "throughput (default)",
    )
    spool_group.add_argument(
        "--gc",
        action="store_true",
        help="sweep orphaned result/claim/heartbeat/scratch "
        "files older than --max-age (pending jobs are "
        "never touched)",
    )
    spool_cmd.add_argument(
        "--max-age",
        type=_positive_float,
        default=3600.0,
        metavar="SECONDS",
        help="GC staleness threshold; files younger than "
        "this -- or belonging to a worker that "
        "heartbeat within it -- are kept "
        "(default: 3600)",
    )
    spool_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the status snapshot (or GC report) as "
        "JSON on stdout instead of the rendered table "
        "-- the exact dict the spool protocol serves, "
        "for dashboards and scripts",
    )

    cache_cmd = sub.add_parser("cache", help="inspect or clean the result cache")
    cache_cmd.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    group = cache_cmd.add_mutually_exclusive_group()
    group.add_argument("--show", action="store_true", help="list entries (default)")
    group.add_argument("--clear", action="store_true", help="delete all entries")
    group.add_argument(
        "--prune",
        action="store_true",
        help="drop stale-code-version, corrupted, and "
        "abandoned entries (never fails: problem "
        "entries are skipped with a warning)",
    )

    return parser


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _build_executor(args: argparse.Namespace) -> Executor:
    """Construct the executor the ``--executor/--workers/--spool`` flags
    describe.

    ``--executor`` defaults to the policy a plain worker count implies --
    pool when ``--workers`` exceeds 1, serial otherwise -- so pre-executor
    invocations behave unchanged.  Contradictory combinations raise
    ``ValueError``, which ``main`` reports as an exit-2 user error.
    """
    name = args.executor
    if name is None:
        name = "pool" if args.workers > 1 else "serial"
    if name != "workqueue" and args.spool is not None:
        raise ValueError("--spool is only meaningful with --executor workqueue")
    if name == "serial":
        if args.workers > 1:
            raise ValueError(
                f"--executor serial contradicts --workers "
                f"{args.workers}; drop one of them"
            )
        return SerialExecutor()
    if name == "pool":
        return ProcessPoolExecutor(args.workers)
    if args.spool is None:
        raise ValueError(
            "--executor workqueue requires --spool DIR (the "
            "directory shared with `python -m repro.runner "
            "worker` processes)"
        )
    return WorkQueueExecutor(args.spool, local_workers=args.workers)


def _print_outcomes(outcomes: List[SweepOutcome], wall_s: float, backend: str) -> None:
    name_width = max([len(o.scenario) for o in outcomes] + [8])
    print(f"{'scenario':<{name_width}}  {'source':<6}  {'elapsed':>9}  headline")
    for outcome in outcomes:
        source = "cache" if outcome.cached else "run"
        print(
            f"{outcome.scenario:<{name_width}}  {source:<6}  "
            f"{outcome.elapsed_s:>8.3f}s  {outcome.metric()}"
        )
    fresh = sum(1 for o in outcomes if not o.cached)
    hits = len(outcomes) - fresh
    print(
        f"-- {len(outcomes)} scenario(s) on the {backend} backend: "
        f"{fresh} executed, {hits} cache hit(s), "
        f"wall {wall_s:.2f}s, code version {code_version()}"
    )


def _dump_json(outcomes: List[SweepOutcome], path: str) -> None:
    payload = [
        {
            "scenario": o.scenario,
            "kind": o.kind,
            "backend": o.backend,
            "cached": o.cached,
            "elapsed_s": o.elapsed_s,
            "result": o.result,
        }
        for o in outcomes
    ]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print(f"wrote {len(payload)} outcome(s) to {path}")


def _run_explore(args: argparse.Namespace) -> int:
    """The ``explore`` subcommand: search, verify, report.

    Exit codes: 0 on success, 2 on user errors (unknown space/strategy), and
    1 when any engine-verified frontier point violates the analytic
    lower-bound contract -- the one outcome that means the proxy itself is
    broken, which CI must treat as a failure.
    """
    from repro.analysis.reporting import dse_frontier_table, dse_verification_table
    from repro.explore import (
        get_space,
        get_strategy,
        objectives_for,
        resolve_batch_runner,
        run_exploration,
        spaces,
        validate_weights,
    )

    if args.list_spaces:
        for name in spaces.space_names():
            print(spaces.get_space(name).describe())
        return 0
    try:
        space = get_space(args.space)
        # The space picks the objective axes (chiplet spaces add throughput,
        # area and energy); weights must name one of *those* axes.  Validate
        # before constructing the strategy so the same typo cannot surface
        # as halving's ValueError instead of a clean exit 2.
        objectives = objectives_for(space, args.weights)
        validate_weights(args.weights, objectives)
        # Weighted exploration also selects halving survivors by weighted
        # score instead of non-domination rank, on the space's axes.
        strategy = get_strategy(
            args.strategy,
            weights=args.weights,
            objectives=tuple((o.key, o.sense) for o in objectives),
        )
        # Pre-flight the same checks run_exploration performs, so user
        # errors exit 2 here while genuine exploration bugs still traceback.
        resolve_batch_runner(space, args.proxy)
    except (KeyError, ValueError) as error:
        return _fail(error.args[0])
    if args.verify_top < 0:
        return _fail(f"--verify-top must be >= 0, got {args.verify_top}")
    try:
        executor = _build_executor(args)
    except ValueError as error:
        return _fail(str(error))

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    with executor:
        report = run_exploration(
            space,
            strategy,
            budget=args.budget,
            verify_top=args.verify_top,
            seed=args.seed,
            executor=executor,
            cache=cache,
            force=args.force,
            objectives=objectives,
            proxy=args.proxy,
            weights=args.weights,
            chunk_size=args.chunk_size,
        )

    frontier = dse_frontier_table(report).render()
    verification = dse_verification_table(report).render() if report.verified else ""
    print(frontier)
    if verification:
        print()
        print(verification)
    print(
        f"-- {len(report.frontier)} frontier point(s) from "
        f"{report.evaluations} proxy evaluation(s), "
        f"{len(report.verified)} engine-verified, "
        f"seed {report.seed}, "
        f"wall {report.proxy_wall_s + report.verify_wall_s:.2f}s"
    )
    if args.report_path:
        with open(args.report_path, "w") as handle:
            handle.write(frontier + "\n")
            if verification:
                handle.write("\n" + verification + "\n")
            handle.write(f"\nseed: {report.seed} (replay with --seed "
                         f"{report.seed})\n")
        print(f"wrote frontier report to {args.report_path}")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote exploration report to {args.json_path}")
    if not report.contract_ok:
        bad = [p.point_id for p in report.verified if not p.contract_ok]
        print(
            f"error: verified point(s) {bad} violate the analytic "
            "lower-bound contract",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: simulate, report, re-certify.

    Exit codes: 0 on success, 2 on user errors, and 1 when the engine
    re-certification of the sampled batch mix violates the lower-bound or
    byte-identical-traffic contract (the serving latencies would then rest
    on a broken cost model -- CI must treat it as a failure).
    """
    import random as random_module

    from repro.analysis.reporting import (
        serve_certification_table,
        serve_curve_table,
        serve_summary_table,
    )
    from repro.serve import get_workload, workload_names
    from repro.serve.driver import recertify_batch_mix, run_load_sweep
    from repro.serve.driver import throughput_latency_curve

    if args.list_workloads:
        from repro.serve import WORKLOADS

        for name in workload_names():
            workload = WORKLOADS[name]
            classes = ", ".join(
                f"{cls.name} (w={cls.weight:g})" for cls in workload.classes
            )
            print(f"{name}: {workload.description}")
            print(f"  classes: {classes}")
        return 0
    try:
        get_workload(args.workload)
    except KeyError as error:
        return _fail(error.args[0])
    if args.recertify < 0:
        return _fail(f"--recertify must be >= 0, got {args.recertify}")
    try:
        executor = _build_executor(args)
    except ValueError as error:
        return _fail(str(error))

    seed = args.seed
    if seed is None:
        seed = random_module.SystemRandom().randrange(2**32)
    params = {
        "workload": args.workload,
        "arrival": args.arrival,
        "policy": args.policy,
        "requests": args.requests,
        "batch_max": args.batch_max,
        "window_s": args.window,
        "queue_depth": args.queue_depth,
        "timeout_s": args.timeout,
        "users": args.users,
        "clients": args.clients,
        "think_s": args.think,
        "seed": seed,
    }
    loads = args.load if args.arrival != "closed" else args.load[:1]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    start = time.perf_counter()
    with executor:
        outcomes = run_load_sweep(
            params, loads, executor=executor, cache=cache, force=args.force
        )
        records = []
        if args.recertify:
            records = recertify_batch_mix(
                [o.result for o in outcomes],
                top=args.recertify,
                executor=executor,
                cache=cache,
                force=args.force,
            )
    wall_s = time.perf_counter() - start

    curve = throughput_latency_curve(outcomes)
    sections = [serve_summary_table(outcomes[-1].result).render()]
    if len(outcomes) > 1:
        sections.append(serve_curve_table(curve).render())
    if records:
        sections.append(serve_certification_table(records).render())
    rendered = "\n\n".join(sections)
    print(rendered)
    simulated = sum(o.result["requests"] for o in outcomes)
    print(
        f"-- {simulated} request(s) across {len(outcomes)} load point(s), "
        f"{len(records)} dispatch shape(s) engine-certified, "
        f"seed {seed}, wall {wall_s:.2f}s"
    )
    if args.report_path:
        with open(args.report_path, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote serving report to {args.report_path}")
    if args.json_path:
        payload = {
            "seed": seed,
            "results": [o.result for o in outcomes],
            "curve": curve,
            "certification": records,
        }
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"wrote serving report to {args.json_path}")
    bad = [r for r in records if not (r["bound_ok"] and r["traffic_ok"])]
    if bad:
        shapes = [f"{r['class']}@b{r['batch']}" for r in bad]
        print(
            f"error: dispatch shape(s) {shapes} violate the analytic "
            "lower-bound/traffic contract",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_spoold(args: argparse.Namespace) -> int:
    """The ``spoold`` subcommand: serve a spool directory over TCP until
    interrupted.  Bind failures (port taken, bad host) are user errors."""
    from .netqueue import SpoolServer

    try:
        server = SpoolServer(args.spool, host=args.host, port=args.port)
    except (OSError, OverflowError, ValueError) as error:
        return _fail(f"spoold: cannot bind {args.host}:{args.port}: {error}")
    print(f"spoold serving {server.spool.root} on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("spoold interrupted", file=sys.stderr)
    finally:
        server.close()
    return 0


def _run_spool(args: argparse.Namespace) -> int:
    """The ``spool`` subcommand: live status (default) or GC, over either
    transport -- the target is a directory or a ``tcp://`` server URL."""
    from repro.analysis.reporting import spool_status_table

    from .executors import open_spool
    from .netqueue import NetSpoolError

    target = str(args.target)
    if not target.startswith("tcp://"):
        from pathlib import Path

        if not Path(target).is_dir():
            return _fail(f"spool: no spool directory at {target}")
    try:
        spool = open_spool(target)
    except ValueError as error:
        return _fail(f"spool: {error}")
    try:
        if args.gc:
            report = spool.gc(args.max_age)
            if args.json:
                print(json.dumps(report, indent=1, sort_keys=True))
                return 0
            removed = report["removed"]
            total = sum(removed.values())
            detail = ", ".join(
                f"{count} {category}"
                for category, count in sorted(removed.items())
                if count
            )
            print(
                f"removed {total} file(s) older than "
                f"{report['max_age_s']:g}s"
                + (f" ({detail})" if detail else "")
                + f", kept {report['kept']} current file(s)"
            )
        else:
            status = spool.status()
            if args.json:
                # The machine-readable twin of the table: the untouched
                # status dict (plus the target, so piped output stays
                # self-describing), one JSON object on stdout.
                print(
                    json.dumps(
                        {"target": spool.describe(), **status},
                        indent=1,
                        sort_keys=True,
                    )
                )
                return 0
            print(spool_status_table(status, target=spool.describe()).render())
        return 0
    except NetSpoolError as error:
        return _fail(f"spool: {error}")
    finally:
        spool.close()


def main(argv: Optional[List[str]] = None) -> int:
    from . import library  # noqa: F401 -- populates the registry

    args = _build_parser().parse_args(argv)

    if args.command == "list":
        try:
            scenarios = (
                REGISTRY.select(tags=args.tag, backend=args.backend)
                if (args.tag or args.backend)
                else REGISTRY.select()
            )
        except KeyError as error:
            return _fail(error.args[0])
        name_width = max([len(s.name) for s in scenarios] + [8])
        for scenario in scenarios:
            tags = ",".join(scenario.tags)
            backends = "/".join(REGISTRY.backends(scenario.kind))
            print(
                f"{scenario.name:<{name_width}}  [{tags}]  ({backends})  "
                f"{scenario.description}"
            )
        print(
            f"-- {len(scenarios)} scenario(s); tags: {', '.join(REGISTRY.all_tags())}"
        )
        return 0

    if args.command == "cache":
        cache = ResultCache(args.cache_dir)
        if args.clear:
            print(f"removed {cache.clear()} entrie(s) from {cache.root}")
            return 0
        if args.prune:
            stats = cache.prune()
            for warning in stats.warnings:
                print(f"warning: {warning}", file=sys.stderr)
            print(
                f"pruned {stats.removed} entrie(s) from {cache.root}, "
                f"kept {stats.kept} current entrie(s)"
            )
            return 0
        entries = cache.entries()
        for path in entries:
            print(path)
        print(
            f"-- {len(entries)} entrie(s) in {cache.root}, "
            f"code version {code_version()}"
        )
        return 0

    if args.command == "worker":
        from .worker import default_worker_id, run_worker

        worker_id = args.worker_id or default_worker_id()
        print(f"worker {worker_id} polling spool {args.spool}", flush=True)
        try:
            processed = run_worker(
                args.spool,
                poll_s=args.poll,
                idle_exit_s=args.idle_exit,
                max_jobs=args.max_jobs,
                worker_id=worker_id,
            )
        except KeyboardInterrupt:
            print(f"worker {worker_id} interrupted", file=sys.stderr)
            return 130
        print(f"worker {worker_id} processed {processed} job(s)")
        return 0

    if args.command == "spoold":
        return _run_spoold(args)

    if args.command == "spool":
        return _run_spool(args)

    if args.command == "explore":
        return _run_explore(args)

    if args.command == "serve":
        return _run_serve(args)

    try:
        if args.command == "run":
            # Validate every name up front, but preserve the user's ordering
            # (and duplicates) -- select() would sort and dedup.
            REGISTRY.select(names=args.names)
            scenarios = list(args.names)
        else:  # sweep
            if args.all:
                scenarios = [s.name for s in REGISTRY.select()]
            elif args.tag or args.names:
                scenarios = [
                    s.name for s in REGISTRY.select(names=args.names, tags=args.tag)
                ]
            else:
                return _fail("sweep: pass scenario names, --tag TAG, or --all")
            if not scenarios:
                return _fail(
                    f"sweep: no scenarios matched tags {args.tag}; "
                    "run `python -m repro.runner list` for the catalogue"
                )
    except KeyError as error:
        return _fail(error.args[0])

    try:
        executor = _build_executor(args)
    except ValueError as error:
        return _fail(str(error))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    start = time.perf_counter()
    try:
        with executor:
            outcomes = run_sweep(
                scenarios,
                cache=cache,
                force=args.force,
                backend=args.backend,
                executor=executor,
                chunk_size=args.chunk_size,
            )
    except KeyError as error:
        return _fail(error.args[0])
    wall_s = time.perf_counter() - start
    _print_outcomes(outcomes, wall_s, args.backend)
    if args.json_path:
        _dump_json(outcomes, args.json_path)
    return 0
