"""The detached work-queue worker: claim spool jobs, execute, publish.

``python -m repro.runner worker --spool DIR|tcp://host:port`` runs
:func:`run_worker` -- the consuming half of the
:class:`~repro.runner.executors.Spool` protocol, over either transport.  A
worker is stateless and host-agnostic: it needs nothing but this source tree
and the spool target, so any machine sharing the filesystem -- or, over the
network transport, merely able to reach the ``spoold`` server -- can join an
in-flight sweep (or leave it -- the submitter's orphan-requeue recovers jobs
a dying worker held).

Execution is the same code path as every other executor:
:func:`repro.runner.sweep._run_one` on the scenario rebuilt from the job
file -- or, for a **chunk job**, :func:`repro.runner.sweep._run_chunk` on
its (kind, params-list) payload, one batch-runner call for the whole slice
-- with the job's segment-memo directory attached first.  Either way
results are byte-identical to an in-process run, and concurrent workers
share memo and cache entries through the concurrent-writer-tolerant disk
layers.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, Optional

from .cache import code_version, process_segment_memo
from .executors import open_spool, scenario_from_payload

__all__ = ["run_worker"]

#: how often a worker refreshes its heartbeat file.
HEARTBEAT_INTERVAL_S = 1.0


def default_worker_id() -> str:
    """A host-unique default identity: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _execute(claimed, worker_id: str) -> Optional[Dict[str, Any]]:
    """Run one claimed job; returns a result payload, or ``None`` for a
    claim that vanished under us (no result should be published then).

    ``claimed`` is either transport's claim object; its ``read()`` returns
    the raw job text (local on the network transport -- the payload
    travelled with the claim).  Three failure shapes map to three result
    forms the submitter distinguishes: a job file that cannot be parsed
    (``corrupt-job`` -- recoverable, the submitter rewrites the job), a
    code-version mismatch (``version-mismatch`` -- fatal, the worker must
    be restarted from the submitter's tree), and a scenario or chunk that
    raises (``exception`` -- fatal, mirrors the in-process behaviour).
    ``KeyboardInterrupt``/``SystemExit`` are deliberately *not* caught: a
    killed worker must look like a dead worker (claim left behind,
    recovered by orphan requeue), not like a failed scenario.
    """
    job_id = claimed.job_id
    try:
        raw = claimed.read()
    except FileNotFoundError:
        # The submitter orphan-requeued this claim while we were stalled
        # (clock pause, filesystem hang): the job belongs to someone else
        # now.  Publishing anything would clobber the new owner's result.
        # (The network transport catches the equivalent race server-side:
        # a stale claim's result is dropped at publish time instead.)
        return None
    except OSError as error:
        return {
            "job": job_id,
            "worker": worker_id,
            "error": {
                "type": "corrupt-job",
                "message": f"cannot read job file: {error}",
            },
        }
    try:
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise TypeError("job payload is not a JSON object")
        chunk = payload.get("chunk")
        if chunk is not None:
            # A chunk job: a (kind, params-list) slice of a batch-capable
            # generation, executed in one batch-runner call below.
            chunk_kind = chunk["kind"]
            chunk_params = chunk["params"]
            if not isinstance(chunk_params, list):
                raise TypeError("chunk params must be a list")
            scenario = None
        else:
            scenario = scenario_from_payload(payload["scenario"])
        backend = payload["backend"]
        segment_memo_dir = payload.get("segment_memo_dir")
        job_version = payload.get("code_version")
    except (ValueError, KeyError, TypeError) as error:
        return {
            "job": job_id,
            "worker": worker_id,
            "error": {
                "type": "corrupt-job",
                "message": f"cannot parse job file: {error}",
            },
        }
    if job_version != code_version():
        return {
            "job": job_id,
            "worker": worker_id,
            "error": {
                "type": "version-mismatch",
                "message": f"job was submitted from code version "
                f"{job_version}, this worker runs {code_version()}",
            },
        }
    try:
        if scenario is None:
            from .sweep import _run_chunk

            results, elapsed_s = _run_chunk(
                (chunk_kind, chunk_params),
                backend=backend,
                segment_memo_dir=segment_memo_dir,
            )
            payload = {
                "job": job_id,
                "worker": worker_id,
                "kind": chunk_kind,
                "results": results,
                "elapsed_s": elapsed_s,
                "code_version": code_version(),
            }
        else:
            from .sweep import _run_one

            name, result, elapsed_s = _run_one(
                scenario, backend=backend, segment_memo_dir=segment_memo_dir
            )
            payload = {
                "job": job_id,
                "worker": worker_id,
                "scenario": name,
                "result": result,
                "elapsed_s": elapsed_s,
                "code_version": code_version(),
            }
    except Exception:
        return {
            "job": job_id,
            "worker": worker_id,
            "error": {"type": "exception", "message": traceback.format_exc()},
        }
    # Piggyback any segment-memo entries this job freshly simulated on the
    # result file: the submitter folds them into its own memo, and the
    # post-job memo_sync below shares them with sibling workers.
    new_entries = process_segment_memo().take_new()
    if new_entries:
        payload["segment_memo"] = new_entries
    return payload


def run_worker(
    spool_dir: os.PathLike,
    poll_s: float = 0.2,
    idle_exit_s: Optional[float] = None,
    max_jobs: Optional[int] = None,
    worker_id: Optional[str] = None,
) -> int:
    """Consume jobs from the spool at ``spool_dir`` -- a directory or a
    ``tcp://host:port`` job-server URL -- until told to stop; returns the
    number of jobs processed.

    Parameters
    ----------
    poll_s:
        Sleep between claim attempts while the spool is empty.
    idle_exit_s:
        Exit once the spool has been empty this long (``None`` runs
        forever, the mode for dedicated worker hosts).
    max_jobs:
        Exit after this many jobs (``None`` is unbounded).
    worker_id:
        Spool-visible identity; defaults to ``<hostname>-<pid>``.
    """
    if poll_s <= 0:
        raise ValueError(f"poll_s must be > 0, got {poll_s}")
    # Populate the kind registry before the first claim, not per job.
    from . import library  # noqa: F401

    spool = open_spool(spool_dir).ensure()
    worker_id = worker_id or default_worker_id()
    stop = threading.Event()
    # Shared with the heartbeat thread, which publishes it as live status:
    # ``spool --status`` derives per-worker throughput from processed/started.
    stats = {"processed": 0}
    info_base = {
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "started": spool.fs_now(f"{worker_id}-start"),
    }

    def heartbeat() -> None:
        while not stop.is_set():
            spool.beat(
                worker_id, info={**info_base, "processed": stats["processed"]}
            )
            stop.wait(HEARTBEAT_INTERVAL_S)

    beat_thread = threading.Thread(
        target=heartbeat, name=f"spool-heartbeat-{worker_id}", daemon=True
    )
    beat_thread.start()
    idle_since = time.monotonic()
    try:
        while max_jobs is None or stats["processed"] < max_jobs:
            claimed = spool.claim(worker_id)
            if claimed is None:
                if (
                    idle_exit_s is not None
                    and time.monotonic() - idle_since >= idle_exit_s
                ):
                    break
                time.sleep(poll_s)
                continue
            result = _execute(claimed, worker_id)
            idle_since = time.monotonic()
            if result is None:
                continue  # lost the claim to an orphan requeue
            if spool.finish(claimed, result):
                stats["processed"] += 1
            # A rejected (stale-claim) result means the job was requeued to
            # another worker while we ran it; nothing to do -- the other
            # worker's byte-identical result is the one that counts.
            # Exchange segment-memo entries with sibling workers through the
            # spool: push what this job freshly simulated, pull what peers
            # published since.  absorb() validates each entry's code version,
            # so a peer on different sources can never poison this worker.
            memo = process_segment_memo()
            fetched = spool.memo_sync(
                result.get("segment_memo") or [], known=memo.keys()
            )
            if fetched:
                memo.absorb(fetched)
    finally:
        stop.set()
        beat_thread.join(timeout=HEARTBEAT_INTERVAL_S + 1.0)
        spool.clear_heartbeat(worker_id)
        spool.close()
    return stats["processed"]
