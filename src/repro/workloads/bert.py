"""BERT-Large encoder layer inventory.

The evaluation's primary workload is the first encoder of BERT-Large at
sequence length 512 and batch 6 (Table 9) or sequence length 384 and batches
1..8 (Table 10, Table 11, Fig. 18).  One encoder layer consists of

* three ``(B*L) x H x H`` projections (Key, Query, Value) with bias,
* 96 independent attention-head MM pairs at batch 6 (16 heads x 6 batches):
  ``L x d x L`` (scores) followed by ``L x L x d`` (context), with transpose
  and softmax fused around the first,
* the ``(B*L) x H x H`` dense projection with residual add and LayerNorm,
* the two feed-forward MMs ``(B*L) x H x 4H`` (with GELU) and
  ``(B*L) x 4H x H`` (with residual add and LayerNorm).

The shapes in Table 9 (3072x1024x1024, 512x64x512x96, 3072x1024x4096, ...)
fall out of these formulas for B=6, L=512, H=1024, 16 heads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .layers import FusedOp, MatMulLayer, ModelSpec

__all__ = ["BertConfig", "BERT_LARGE", "bert_large_encoder", "bert_large_model"]


@dataclass(frozen=True)
class BertConfig:
    """Transformer encoder hyper-parameters."""

    hidden: int = 1024
    heads: int = 16
    ffn_hidden: int = 4096
    layers: int = 24

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


#: BERT-Large: 24 layers, hidden 1024, 16 heads, FFN 4096.
BERT_LARGE = BertConfig()


def bert_large_encoder(
    batch: int = 6, seq_len: int = 512, config: BertConfig = BERT_LARGE
) -> ModelSpec:
    """Layer inventory for one BERT-Large encoder layer.

    Returns a :class:`ModelSpec` whose ``tasks_per_inference`` is 1 (the paper
    counts one encoder layer as one task when comparing against CHARM).
    """
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    hidden = config.hidden
    tokens = batch * seq_len
    head_dim = config.head_dim
    num_heads = batch * config.heads

    layers: List[MatMulLayer] = []
    for name in ("key", "query", "value"):
        layers.append(
            MatMulLayer(
                name=name,
                m=tokens,
                k=hidden,
                n=hidden,
                fused_ops=(FusedOp.BIAS,),
            )
        )
    layers.append(
        MatMulLayer(
            name="attention_mm1",
            m=seq_len,
            k=head_dim,
            n=seq_len,
            num=num_heads,
            fused_ops=(FusedOp.TRANSPOSE, FusedOp.SOFTMAX),
            rhs_is_weight=False,
            depends_on=("key", "query"),
        )
    )
    layers.append(
        MatMulLayer(
            name="attention_mm2",
            m=seq_len,
            k=seq_len,
            n=head_dim,
            num=num_heads,
            rhs_is_weight=False,
            depends_on=("attention_mm1", "value"),
        )
    )
    layers.append(
        MatMulLayer(
            name="dense",
            m=tokens,
            k=hidden,
            n=hidden,
            fused_ops=(
                FusedOp.BIAS,
                FusedOp.LAYER_ADD,
                FusedOp.SCALE_SHIFT,
                FusedOp.MEAN_VAR_NORM,
            ),
            depends_on=("attention_mm2",),
        )
    )
    layers.append(
        MatMulLayer(
            name="ffn_mm1",
            m=tokens,
            k=hidden,
            n=config.ffn_hidden,
            fused_ops=(FusedOp.BIAS, FusedOp.GELU),
            depends_on=("dense",),
        )
    )
    layers.append(
        MatMulLayer(
            name="ffn_mm2",
            m=tokens,
            k=config.ffn_hidden,
            n=hidden,
            fused_ops=(
                FusedOp.BIAS,
                FusedOp.LAYER_ADD,
                FusedOp.SCALE_SHIFT,
                FusedOp.MEAN_VAR_NORM,
            ),
            depends_on=("ffn_mm1",),
        )
    )
    return ModelSpec(
        name=f"bert-large-encoder(B={batch},L={seq_len})",
        layers=tuple(layers),
        batch=batch,
        sequence_length=seq_len,
        tasks_per_inference=1,
    )


def bert_large_model(
    batch: int = 8, seq_len: int = 384, config: BertConfig = BERT_LARGE
) -> ModelSpec:
    """The full 24-layer BERT-Large encoder stack (used by the GPU comparison).

    The embedding layer is ignored, as in the paper ("less than 0.2 ms on the
    T4"); the full model is simply 24 identical encoder layers.
    """
    encoder = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
    layers: List[MatMulLayer] = []
    for layer_index in range(config.layers):
        for layer in encoder.layers:
            deps = tuple(f"{d}_{layer_index}" for d in layer.depends_on)
            layers.append(
                MatMulLayer(
                    name=f"{layer.name}_{layer_index}",
                    m=layer.m,
                    k=layer.k,
                    n=layer.n,
                    num=layer.num,
                    fused_ops=layer.fused_ops,
                    lhs_offchip=layer.lhs_offchip,
                    rhs_offchip=layer.rhs_offchip,
                    out_offchip=layer.out_offchip,
                    rhs_is_weight=layer.rhs_is_weight,
                    dtype=layer.dtype,
                    depends_on=deps,
                )
            )
    return ModelSpec(
        name=f"bert-large(B={batch},L={seq_len})",
        layers=tuple(layers),
        batch=batch,
        sequence_length=seq_len,
        tasks_per_inference=config.layers,
    )
