"""MLP workload inventory.

CHARM's "MLP" benchmark is a stack of large square fully connected layers; the
shape used here (five 4096x4096 layers over a 3072-token batch) keeps every
layer compute-bound, which is the regime the paper's MLP comparison exercises
(large MMs executed one at a time with bandwidth-optimised load/store
interleaving).
"""

from __future__ import annotations

from typing import List

from .layers import FusedOp, MatMulLayer, ModelSpec

__all__ = ["mlp_model"]


def mlp_model(batch: int = 3072, hidden: int = 4096, depth: int = 5) -> ModelSpec:
    """A deep, wide MLP as one task."""
    if batch <= 0 or hidden <= 0 or depth <= 0:
        raise ValueError("batch, hidden, and depth must be positive")
    layers: List[MatMulLayer] = []
    previous_name = ""
    for index in range(depth):
        name = f"mlp_fc{index}"
        deps = (previous_name,) if previous_name else ()
        layers.append(
            MatMulLayer(
                name=name,
                m=batch,
                k=hidden,
                n=hidden,
                fused_ops=(
                    (FusedOp.BIAS, FusedOp.GELU)
                    if index < depth - 1
                    else (FusedOp.BIAS,)
                ),
                depends_on=deps,
            )
        )
        previous_name = name
    return ModelSpec(
        name=f"mlp(B={batch},H={hidden},D={depth})",
        layers=tuple(layers),
        batch=batch,
        tasks_per_inference=1,
    )
