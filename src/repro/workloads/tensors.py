"""Deterministic synthetic tensors standing in for the HuggingFace checkpoint.

The paper sources BERT-Large inputs and weights from HuggingFace and validates
board outputs against a Python reference.  Functional validation only needs
the simulated datapath and the NumPy reference to be fed the *same* tensors,
so this module generates reproducible, well-conditioned random tensors from a
seeded generator.  Values are scaled like trained transformer weights
(std ~ 1/sqrt(fan_in)) so that softmax/LayerNorm operate in realistic ranges.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["make_rng", "activation", "weight", "bias", "encoder_weights"]


DEFAULT_SEED = 20250621  # ISCA'25 main-conference start date


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """A NumPy generator with the project-wide default seed."""
    return np.random.default_rng(seed)


def activation(
    shape: Tuple[int, ...], rng: np.random.Generator, dtype=np.float32
) -> np.ndarray:
    """A synthetic activation tensor (unit-variance Gaussian)."""
    return rng.standard_normal(shape).astype(dtype)


def weight(
    shape: Tuple[int, ...], rng: np.random.Generator, dtype=np.float32
) -> np.ndarray:
    """A synthetic weight matrix scaled by 1/sqrt(fan_in)."""
    fan_in = shape[0] if len(shape) > 1 else max(shape[0], 1)
    return (rng.standard_normal(shape) / np.sqrt(fan_in)).astype(dtype)


def bias(size: int, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """A small synthetic bias vector."""
    return (0.01 * rng.standard_normal(size)).astype(dtype)


def encoder_weights(
    hidden: int, ffn_hidden: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """The full weight set of one encoder layer, keyed as reference.py expects."""
    return {
        "wq": weight((hidden, hidden), rng),
        "wk": weight((hidden, hidden), rng),
        "wv": weight((hidden, hidden), rng),
        "wo": weight((hidden, hidden), rng),
        "bq": bias(hidden, rng),
        "bk": bias(hidden, rng),
        "bv": bias(hidden, rng),
        "bo": bias(hidden, rng),
        "w1": weight((hidden, ffn_hidden), rng),
        "b1": bias(ffn_hidden, rng),
        "w2": weight((ffn_hidden, hidden), rng),
        "b2": bias(hidden, rng),
        "ln1_gamma": np.ones(hidden, dtype=np.float32),
        "ln1_beta": np.zeros(hidden, dtype=np.float32),
        "ln2_gamma": np.ones(hidden, dtype=np.float32),
        "ln2_beta": np.zeros(hidden, dtype=np.float32),
    }
