"""NumPy reference implementations used to validate the simulated datapath.

These are the "python_gold" equivalents of the paper's artifact: straight
NumPy implementations of the operators RSN-XNN executes (tiled GEMM, bias,
softmax, GELU, LayerNorm, the attention block, and a whole encoder layer).
The functional-level simulation of the overlay must reproduce these outputs
bit-for-bit up to floating-point reassociation, which the integration tests
check with tight tolerances.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = [
    "gemm",
    "bias_add",
    "softmax",
    "gelu",
    "layer_norm",
    "attention_head",
    "multi_head_attention",
    "encoder_layer",
    "tiled_gemm",
]


def gemm(
    lhs: np.ndarray, rhs: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Plain ``lhs @ rhs`` with an optional broadcast bias add."""
    out = lhs @ rhs
    if bias is not None:
        out = out + bias
    return out


def bias_add(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    return x + bias


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by BERT."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """LayerNorm over the last dimension (the mean/variance/normalisation plus
    scale-and-shift pipeline that MemC and the MMEs split between them)."""
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    normalised = (x - mean) / np.sqrt(var + eps)
    return normalised * gamma + beta


def attention_head(
    query: np.ndarray, key: np.ndarray, value: np.ndarray, scale: Optional[float] = None
) -> np.ndarray:
    """Single attention head: softmax(Q K^T / sqrt(d)) V.

    ``query``/``key``/``value`` are ``(seq, head_dim)``.  This is the MM1 ->
    softmax -> MM2 chain that RSN-XNN pipelines on chip.
    """
    head_dim = query.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    scores = query @ key.T * scale
    weights = softmax(scores, axis=-1)
    return weights @ value


def multi_head_attention(
    hidden: np.ndarray, weights: Dict[str, np.ndarray], num_heads: int
) -> np.ndarray:
    """Full multi-head self-attention block for one sequence.

    ``hidden`` is ``(seq, hidden)``; ``weights`` holds ``wq/wk/wv/wo`` of shape
    ``(hidden, hidden)`` and ``bq/bk/bv/bo`` of shape ``(hidden,)``.
    """
    seq, width = hidden.shape
    if width % num_heads:
        raise ValueError("hidden width must be divisible by num_heads")
    head_dim = width // num_heads
    query = gemm(hidden, weights["wq"], weights["bq"])
    key = gemm(hidden, weights["wk"], weights["bk"])
    value = gemm(hidden, weights["wv"], weights["bv"])
    context = np.empty_like(query)
    for head in range(num_heads):
        sl = slice(head * head_dim, (head + 1) * head_dim)
        context[:, sl] = attention_head(query[:, sl], key[:, sl], value[:, sl])
    return gemm(context, weights["wo"], weights["bo"])


def encoder_layer(
    hidden: np.ndarray, weights: Dict[str, np.ndarray], num_heads: int
) -> np.ndarray:
    """One transformer encoder layer (attention + FFN, post-LN as in BERT)."""
    attention_out = multi_head_attention(hidden, weights, num_heads)
    attention_out = layer_norm(
        attention_out + hidden, weights["ln1_gamma"], weights["ln1_beta"]
    )
    ffn = gemm(attention_out, weights["w1"], weights["b1"])
    ffn = gelu(ffn)
    ffn = gemm(ffn, weights["w2"], weights["b2"])
    return layer_norm(ffn + attention_out, weights["ln2_gamma"], weights["ln2_beta"])


def tiled_gemm(
    lhs: np.ndarray, rhs: np.ndarray, tile_m: int, tile_k: int, tile_n: int
) -> np.ndarray:
    """Output-stationary tiled GEMM, accumulating along K tile by tile.

    Used by tests to confirm that tiling (the way the overlay streams tiles
    through the MMEs) is numerically equivalent to the whole-matrix product up
    to floating-point reassociation.
    """
    m, k = lhs.shape
    k2, n = rhs.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    out = np.zeros((m, n), dtype=np.result_type(lhs, rhs))
    for i in range(0, m, tile_m):
        for j in range(0, n, tile_n):
            accumulator = np.zeros(
                (min(tile_m, m - i), min(tile_n, n - j)), dtype=out.dtype
            )
            for p in range(0, k, tile_k):
                accumulator += (
                    lhs[i : i + tile_m, p : p + tile_k]
                    @ rhs[p : p + tile_k, j : j + tile_n]
                )
            out[i : i + tile_m, j : j + tile_n] = accumulator
    return out
