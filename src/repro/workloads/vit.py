"""ViT (Vision Transformer) encoder inventory.

Table 7 compares RSN-XNN and CHARM on "VIT" with "task size configurations
aligned with CHARM's implementations"; CHARM's ViT workload is a ViT-Base
style encoder (hidden 768, 12 heads, FFN 3072, 196 + 1 patch tokens).  Since
the CHARM artifact's exact padding is not part of this reproduction, the
sequence length is rounded to 208 (a multiple of 16) so the tiled mappings
divide evenly; the substitution is noted in DESIGN.md and only affects
absolute numbers, not the RSN-vs-baseline shape.
"""

from __future__ import annotations


from .bert import BertConfig, bert_large_encoder
from .layers import ModelSpec

__all__ = ["VIT_BASE", "vit_model"]


#: ViT-Base hyper-parameters (encoder part).
VIT_BASE = BertConfig(hidden=768, heads=12, ffn_hidden=3072, layers=12)


def vit_model(
    batch: int = 6, seq_len: int = 208, config: BertConfig = VIT_BASE
) -> ModelSpec:
    """One ViT encoder layer as a task (same structure as a BERT encoder)."""
    encoder = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
    return ModelSpec(
        name=f"vit-base-encoder(B={batch},L={seq_len})",
        layers=encoder.layers,
        batch=batch,
        sequence_length=seq_len,
        tasks_per_inference=1,
    )
