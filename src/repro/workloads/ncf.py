"""NCF (Neural Collaborative Filtering) layer inventory.

CHARM's NCF workload is the MLP tower of the NeuMF model: a stack of fully
connected layers whose widths halve from 2048 down to 64, evaluated over a
large batch of user/item embedding pairs.  The exact embedding tables are
irrelevant to the accelerator comparison (they are gathers, not GEMMs), so the
task here is the dense tower only, matching how CHARM schedules it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .layers import FusedOp, MatMulLayer, ModelSpec

__all__ = ["ncf_model", "NCF_TOWER_WIDTHS"]


#: layer widths of the NeuMF MLP tower (input -> output per layer).
NCF_TOWER_WIDTHS: Tuple[int, ...] = (2048, 1024, 512, 256, 128, 64)


def ncf_model(
    batch: int = 32768, widths: Sequence[int] = NCF_TOWER_WIDTHS
) -> ModelSpec:
    """The NCF MLP tower over a batch of interaction pairs as one task."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    if len(widths) < 2:
        raise ValueError("need at least two widths (input and output)")
    layers: List[MatMulLayer] = []
    previous_name = ""
    for index, (k, n) in enumerate(zip(widths[:-1], widths[1:])):
        name = f"ncf_fc{index}"
        deps = (previous_name,) if previous_name else ()
        layers.append(
            MatMulLayer(
                name=name,
                m=batch,
                k=k,
                n=n,
                fused_ops=(FusedOp.BIAS,),
                depends_on=deps,
            )
        )
        previous_name = name
    return ModelSpec(
        name=f"ncf(B={batch})",
        layers=tuple(layers),
        batch=batch,
        tasks_per_inference=1,
    )
