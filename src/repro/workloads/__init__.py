"""DNN workload descriptions and NumPy reference implementations.

The paper evaluates RSN-XNN on transformer encoders (BERT-Large, ViT), NCF,
and an MLP, always expressed as sequences of matrix multiplications with fused
non-MM operators (bias, softmax, GELU, LayerNorm).  This package provides

* :mod:`repro.workloads.layers` -- the :class:`MatMulLayer` /
  :class:`ModelSpec` data model shared by the overlay code generator, the
  baselines, and the analytical models;
* :mod:`repro.workloads.bert` (and ``vit`` / ``ncf`` / ``mlp``) -- concrete
  layer inventories parameterised by batch size and sequence length;
* :mod:`repro.workloads.reference` -- NumPy reference operators and a full
  encoder forward pass used to validate the simulated datapath numerically;
* :mod:`repro.workloads.tensors` -- deterministic synthetic tensors standing
  in for the HuggingFace checkpoint the paper loads onto the board.
"""

from .layers import FusedOp, MatMulLayer, ModelSpec
from .bert import bert_large_encoder, bert_large_model, BERT_LARGE
from .vit import vit_model
from .ncf import ncf_model
from .mlp import mlp_model
from . import reference, tensors

__all__ = [
    "BERT_LARGE",
    "FusedOp",
    "MatMulLayer",
    "ModelSpec",
    "bert_large_encoder",
    "bert_large_model",
    "mlp_model",
    "ncf_model",
    "reference",
    "tensors",
    "vit_model",
]
