"""The layer-level data model shared by the overlay, baselines and analyses.

Everything the evaluation runs boils down to sequences of (possibly very many
instances of) matrix multiplications with a few fused elementwise or reduction
operators around them.  :class:`MatMulLayer` captures one such linear layer
the way the paper's tables describe them -- ``M x K x N x Num`` with a list of
combined non-MM operators (Table 9's "Combined non-MMs" column) -- plus where
its operands live, which is what the bandwidth orchestration cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import List, Optional, Tuple

__all__ = ["FusedOp", "MatMulLayer", "ModelSpec", "DTYPE_BYTES"]


#: bytes per element for the precisions the paper discusses.
DTYPE_BYTES = {"fp32": 4, "fp16": 2, "int16": 2, "int8": 1}


class FusedOp(str, Enum):
    """Non-MM operators fused with a linear layer (Table 2 / Table 9)."""

    BIAS = "bias"
    SOFTMAX = "softmax"
    GELU = "gelu"
    TRANSPOSE = "transpose"
    LAYER_ADD = "layer_add"
    SCALE_SHIFT = "scale_shift"
    MEAN_VAR_NORM = "mean_var_norm"


@dataclass(frozen=True)
class MatMulLayer:
    """One linear layer: ``Num`` independent ``M x K x N`` matrix multiplies.

    Parameters
    ----------
    name:
        Human-readable layer name (``"attention_mm1"``).
    m, k, n:
        GEMM dimensions of a single instance (LHS is ``m x k``, RHS ``k x n``).
    num:
        Number of independent instances (e.g. 96 attention heads at batch 6).
    fused_ops:
        Non-MM operators executed together with this layer.
    lhs_offchip / rhs_offchip / out_offchip:
        Whether each operand starts/ends in off-chip memory.  Intermediate
        tensors kept on chip by pipelined mappings set these to ``False``.
    rhs_is_weight:
        Weights/biases come from LPDDR; activations come from DDR.
    dtype:
        Element type (``"fp32"`` everywhere in the paper's experiments).
    depends_on:
        Names of layers whose output this layer consumes (data dependences
        used by segmentation and by the mapping-type analysis).
    """

    name: str
    m: int
    k: int
    n: int
    num: int = 1
    fused_ops: Tuple[FusedOp, ...] = ()
    lhs_offchip: bool = True
    rhs_offchip: bool = True
    out_offchip: bool = True
    rhs_is_weight: bool = True
    dtype: str = "fp32"
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0 or self.num <= 0:
            raise ValueError(
                f"layer {self.name!r}: dimensions and num must be positive"
            )
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"layer {self.name!r}: unknown dtype {self.dtype!r}")

    # -------------------------------------------------------------- volumes

    @property
    def element_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def flops(self) -> float:
        """Total multiply-accumulate FLOPs (2 per MAC) over all instances."""
        return 2.0 * self.m * self.k * self.n * self.num

    @property
    def lhs_bytes(self) -> int:
        return self.m * self.k * self.num * self.element_bytes

    @property
    def rhs_bytes(self) -> int:
        return self.k * self.n * self.num * self.element_bytes

    @property
    def out_bytes(self) -> int:
        return self.m * self.n * self.num * self.element_bytes

    @property
    def offchip_load_bytes(self) -> int:
        """Bytes that must be loaded from off-chip for one execution."""
        total = 0
        if self.lhs_offchip:
            total += self.lhs_bytes
        if self.rhs_offchip:
            total += self.rhs_bytes
        return total

    @property
    def offchip_store_bytes(self) -> int:
        return self.out_bytes if self.out_offchip else 0

    @property
    def offchip_bytes(self) -> int:
        return self.offchip_load_bytes + self.offchip_store_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per off-chip byte (used by the roofline analyses)."""
        offchip = self.offchip_bytes
        if not offchip:
            return float("inf")
        return self.flops / offchip

    # ------------------------------------------------------------ modifiers

    def with_batch(
        self, batch: int, batch_scales_m: bool = True, batch_scales_num: bool = False
    ) -> "MatMulLayer":
        """Scale the layer for a batch size.

        Transformer linear layers grow their M dimension with batch (tokens
        are concatenated), while per-head attention MMs multiply their
        instance count instead.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        layer = self
        if batch_scales_m:
            layer = replace(layer, m=self.m * batch)
        if batch_scales_num:
            layer = replace(layer, num=self.num * batch)
        return layer

    def kept_onchip(
        self, lhs: bool = False, rhs: bool = False, out: bool = False
    ) -> "MatMulLayer":
        """A copy with selected operands marked as staying on chip."""
        return replace(
            self,
            lhs_offchip=self.lhs_offchip and not lhs,
            rhs_offchip=self.rhs_offchip and not rhs,
            out_offchip=self.out_offchip and not out,
        )

    def has_fused(self, op: FusedOp) -> bool:
        return op in self.fused_ops


@dataclass(frozen=True)
class ModelSpec:
    """A full model: an ordered list of linear layers plus metadata.

    ``layers_per_task`` describes what the paper calls a *task* (one encoder
    layer for BERT/ViT, the full network for NCF/MLP); throughput comparisons
    are reported in tasks per second.
    """

    name: str
    layers: Tuple[MatMulLayer, ...]
    batch: int = 1
    sequence_length: Optional[int] = None
    tasks_per_inference: int = 1

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")

    @property
    def total_flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def total_offchip_bytes(self) -> int:
        return sum(layer.offchip_bytes for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.rhs_bytes for layer in self.layers if layer.rhs_is_weight)

    def layer(self, name: str) -> MatMulLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no layer {name!r}")

    def layer_names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    def dependent_pairs(self) -> List[Tuple[str, str]]:
        """(producer, consumer) layer-name pairs from the dependence metadata."""
        pairs = []
        for layer in self.layers:
            for dep in layer.depends_on:
                pairs.append((dep, layer.name))
        return pairs
