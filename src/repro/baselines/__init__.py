"""Comparison points the paper evaluates RSN-XNN against.

* :mod:`repro.baselines.charm` -- a model of CHARM (FPGA'23), the
  state-of-the-art Versal accelerator the paper compares latency and
  throughput against (Fig. 18, Table 6b, Table 7).
* :mod:`repro.baselines.overlay` -- the generic layer-serial overlay style
  (von-Neumann, RISC-like ISA) used as the "No Optimize" baseline of Table 9
  and in the Fig. 6 illustration.
* :mod:`repro.baselines.published` -- literature rows quoted in Table 8
  (other FPGA transformer accelerators).
"""

from .charm import CharmModel, CHARM_PUBLISHED
from .overlay import VectorOverlayModel, serial_overlay_latency
from .published import TABLE8_ACCELERATORS

__all__ = [
    "CHARM_PUBLISHED",
    "CharmModel",
    "TABLE8_ACCELERATORS",
    "VectorOverlayModel",
    "serial_overlay_latency",
]
