"""Published results of other FPGA transformer accelerators (Table 8).

These rows are literature values the paper quotes for context; they are not
re-simulated.  The RSN-XNN row's achieved TOPS and utilisation are regenerated
by the benchmark from the simulator and printed next to these.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["TABLE8_ACCELERATORS"]


TABLE8_ACCELERATORS: Dict[str, Dict[str, object]] = {
    "RSN-XNN": {"board": "VCK190", "precision": "FP32", "peak_tops": 8.0,
                "achieved_tops": 4.7, "utilization_pct": 59, "model": "BERT-L",
                "frequency_mhz": 260},
    "SSR": {"board": "VCK190", "precision": "INT8", "peak_tops": 102.0,
            "achieved_tops": 26.7, "utilization_pct": 26, "model": "DeiT-T",
            "frequency_mhz": None},
    "FET-OPU": {"board": "U280", "precision": "INT8", "peak_tops": 7.2,
                "achieved_tops": 1.64, "utilization_pct": 23, "model": "BERT-B",
                "frequency_mhz": 200},
    "DFX": {"board": "U280", "precision": "FP16", "peak_tops": 1.2,
            "achieved_tops": 0.19, "utilization_pct": 15, "model": "GPT2 Prefill",
            "frequency_mhz": 200},
    "VIA": {"board": "U50", "precision": "FP16", "peak_tops": 1.2,
            "achieved_tops": 0.31, "utilization_pct": 26, "model": "Swin-T",
            "frequency_mhz": 300},
    "FTRANS": {"board": "VCU118", "precision": "INT16", "peak_tops": 2.7,
               "achieved_tops": 1.05, "utilization_pct": 38, "model": "RoBERTa-B",
               "frequency_mhz": 200},
}
