"""The generic layer-serial overlay baseline (von-Neumann, RISC-like ISA).

Two uses in the paper:

* Fig. 6 contrasts an RSN datapath with a vector-ISA overlay on two toy
  applications; the vector overlay serialises on write-after-read hazards
  because its coarse "registers" (whole on-chip buffers) cannot be renamed.
  :class:`VectorOverlayModel` reproduces that behaviour at instruction
  granularity so the Fig. 6 benchmark can show the stall.
* Table 9's "No Optimize" column is RSN-XNN driven like a typical overlay:
  one layer at a time, no fine-grained bandwidth mapping, attention scores
  through DDR.  That baseline is produced by running the real RSN-XNN
  simulator with ``CodegenOptions.baseline()``; :func:`serial_overlay_latency`
  is a thin convenience wrapper used by benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..workloads.bert import BertConfig, BERT_LARGE

__all__ = ["VectorOverlayModel", "serial_overlay_latency"]


@dataclass
class VectorOverlayModel:
    """A cycle-level model of the Fig. 6 baseline overlay.

    The datapath has one load unit, one add unit, one store unit and three
    100-element vector registers (v1 loads, v2 holds the constant, v3 results).
    Instructions execute in order; an instruction may start only when the
    instructions producing its sources have finished *and* no earlier
    instruction still needs the register it overwrites (WAR hazard on v1 --
    exactly the stall discussed in Section 3.1).
    """

    load_cycles: int = 100
    add_cycles: int = 100
    store_cycles: int = 100

    def run(self, program: Sequence[Tuple[str, str, Tuple[str, ...]]]) -> int:
        """Execute ``(op, dest_register, source_registers)`` tuples; return cycles.

        ``op`` is one of ``load``, ``add``, ``store`` (``store`` has no dest).
        """
        duration = {"load": self.load_cycles, "add": self.add_cycles,
                    "store": self.store_cycles}
        register_ready: Dict[str, int] = {}
        register_last_read: Dict[str, int] = {}
        time = 0
        for op, dest, sources in program:
            if op not in duration:
                raise ValueError(f"unknown op {op!r}")
            start = time
            for source in sources:
                start = max(start, register_ready.get(source, 0))
            if dest:
                # WAR: cannot overwrite a register an earlier instruction still reads.
                start = max(start, register_last_read.get(dest, 0))
            finish = start + duration[op]
            for source in sources:
                register_last_read[source] = max(register_last_read.get(source, 0), finish)
            if dest:
                register_ready[dest] = finish
            time = finish
        return time

    # -- canonical Fig. 6 programs -------------------------------------------

    @staticmethod
    def application1_program() -> List[Tuple[str, str, Tuple[str, ...]]]:
        """out[i] = in[i] + 1 for 100 elements (one load/add/store chain)."""
        return [("load", "v1", ()), ("add", "v3", ("v1", "v2")), ("store", "", ("v3",))]

    @staticmethod
    def application2_program() -> List[Tuple[str, str, Tuple[str, ...]]]:
        """The 300-element three-phase application of Fig. 6 (add, copy, add)."""
        return [
            ("load", "v1", ()), ("add", "v3", ("v1", "v2")), ("store", "", ("v3",)),
            ("load", "v1", ()), ("store", "", ("v1",)),
            ("load", "v1", ()), ("add", "v3", ("v1", "v2")), ("store", "", ("v3",)),
        ]


def serial_overlay_latency(batch: int = 6, seq_len: int = 512,
                           config: BertConfig = BERT_LARGE) -> float:
    """BERT encoder latency (seconds) under the layer-serial overlay style.

    This simply runs the RSN-XNN simulator with every RSN-specific
    optimisation disabled -- the datapath behaves like a conventional overlay:
    strict per-layer load/compute/store, attention intermediates off-chip.
    """
    from ..xnn import CodegenOptions, XNNConfig, XNNExecutor  # local import: avoid cycle

    executor = XNNExecutor(config=XNNConfig(carry_data=False),
                           options=CodegenOptions.baseline())
    return executor.run_encoder(batch=batch, seq_len=seq_len, config=config).latency_s
