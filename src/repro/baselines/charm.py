"""A model of CHARM, the state-of-the-art comparison point on the VCK190.

CHARM (Zhuang et al., FPGA'23) composes two fixed matrix-multiply engines on
the same VCK190 -- one sized for large MMs, one for small MMs -- and schedules
BERT-like models at a six-batch granularity, storing every intermediate
(including the attention score matrices) in off-chip DDR because it cannot
pipeline dependent layers.  The paper compares against CHARM in three places:

* Table 6 -- single-kernel and end-to-end GEMM throughput,
* Fig. 18 -- BERT-Large encoder latency/throughput across batch sizes,
* Table 7 -- latency per task at maximum throughput for BERT/ViT/NCF/MLP.

We model CHARM analytically from its published design decisions: a large MM
engine with the published 4.5 TFLOPS single-kernel throughput, DDR-only
off-chip traffic (it does not use the LPDDR channel), one-layer-at-a-time
execution with intermediates written back to DDR, and scheduling at a
``schedule_batch`` (6) granularity so smaller batches pay for the full
six-batch pass.  The published measurement points are kept alongside so the
benchmarks can print model and literature values next to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.vck190 import VCK190, VCK190Spec
from ..workloads.layers import MatMulLayer, ModelSpec

__all__ = ["CharmModel", "CHARM_PUBLISHED"]


#: published CHARM results used as reference columns in the benchmarks.
CHARM_PUBLISHED: Dict[str, object] = {
    # Table 6a: single-kernel AIE GEMM throughput (GFLOPS).
    "aie_gemm_gflops": 4504.46,
    # Table 6b: end-to-end square-MM throughput with DRAM (GFLOPS).
    "end_to_end_gemm_gflops": {1024: 1103.46, 3072: 2850.13, 6144: 3277.99},
    # Fig. 18: best latency (ms, B=6) and best throughput (tasks/s, B=24).
    "bert_best_latency_ms": 110.0,
    "bert_best_throughput_tasks_per_s": 102.7,
    # Table 7: latency per task at maximum throughput (ms).
    "latency_per_task_ms": {"BERT": 57.2, "VIT": 57.7, "NCF": 40.4, "MLP": 119.0},
}


@dataclass
class CharmModel:
    """Analytical latency/throughput model of the CHARM accelerator.

    Parameters
    ----------
    spec:
        Platform description (off-chip bandwidths).
    large_mm_tflops / small_mm_tflops:
        Sustained throughput of CHARM's two engines; the large engine matches
        the published 4.5 TFLOPS kernel, the small engine is the separately
        sized unit CHARM dedicates to the attention MMs.
    schedule_batch:
        CHARM schedules BERT at this batch granularity; smaller requests still
        execute a full pass (the reason its single-batch latency is poor).
    ddr_efficiency:
        Fraction of the DDR channel's observed bandwidth CHARM sustains.
    """

    spec: VCK190Spec = VCK190
    large_mm_tflops: float = 4.5
    small_mm_tflops: float = 1.2
    schedule_batch: int = 6
    ddr_efficiency: float = 0.85

    # ------------------------------------------------------------------ GEMM

    def gemm_throughput_gflops(self, size: int) -> float:
        """End-to-end square-MM throughput including DDR traffic (Table 6b)."""
        if size <= 0:
            raise ValueError("size must be positive")
        flops = 2.0 * size ** 3
        traffic = 3.0 * size * size * 4          # LHS + RHS + OUT through DDR only
        compute_s = flops / (self.large_mm_tflops * 1e12)
        ddr_bw = (self.spec.ddr_read_bw + self.spec.ddr_write_bw) / 2 * self.ddr_efficiency
        memory_s = traffic / ddr_bw
        # CHARM overlaps compute with data movement only coarsely (per tile
        # column); model that as half of the smaller term being hidden.
        latency = max(compute_s, memory_s) + 0.5 * min(compute_s, memory_s)
        return flops / latency / 1e9

    # ------------------------------------------------------------- layer time

    def _layer_latency(self, layer: MatMulLayer, large: bool) -> float:
        engine = self.large_mm_tflops if large else self.small_mm_tflops
        compute_s = layer.flops / (engine * 1e12)
        # All operands move through DDR (CHARM does not split across LPDDR) and
        # intermediates always round-trip off-chip.  Without instruction-level
        # load/store interleaving the data movement of a layer overlaps its
        # compute only coarsely, so the two mostly serialise.
        traffic = layer.lhs_bytes + layer.rhs_bytes + layer.out_bytes
        ddr_bw = (self.spec.ddr_read_bw + self.spec.ddr_write_bw) / 2 * self.ddr_efficiency
        memory_s = traffic / ddr_bw
        return max(compute_s, memory_s) + 0.7 * min(compute_s, memory_s)

    def _is_small_layer(self, layer: MatMulLayer) -> bool:
        return layer.m * layer.k * layer.n < 64 * 1024 * 1024

    def model_latency(self, model: ModelSpec) -> float:
        """Latency in seconds for one pass over ``model`` (which already embeds
        its batch size in the layer shapes).

        CHARM schedules at a ``schedule_batch`` granularity: requests smaller
        than that still execute a full pass, so callers model a batch-B request
        with ``bert_large_encoder(batch=max(B, schedule_batch))``.
        """
        return sum(self._layer_latency(layer, large=not self._is_small_layer(layer))
                   for layer in model.layers)

    def throughput_tasks_per_s(self, model: ModelSpec,
                               useful_tasks: Optional[int] = None) -> float:
        """Useful tasks completed per second for one pass of ``model``."""
        latency = self.model_latency(model)
        tasks = useful_tasks if useful_tasks is not None else model.batch
        return tasks / latency

    def latency_per_task_ms(self, model: ModelSpec) -> float:
        """Latency per task at maximum throughput (the Table 7 metric)."""
        return 1e3 / self.throughput_tasks_per_s(model)
