"""Plain-text table rendering shared by the benchmark harness.

Every benchmark prints the rows/series of the table or figure it regenerates.
To keep that output consistent (and easy to diff against EXPERIMENTS.md), all
of them go through :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "format_table", "format_value"]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get a sensible number of digits, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]], notes: Iterable[str] = ()) -> str:
    """One-shot helper: build and render a table."""
    table = Table(title, list(columns))
    for row in rows:
        table.add_row(*row)
    for note in notes:
        table.add_note(note)
    return table.render()
