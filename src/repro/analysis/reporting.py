"""Plain-text table rendering shared by the benchmark harness.

Every benchmark prints the rows/series of the table or figure it regenerates.
To keep that output consistent (and easy to diff against EXPERIMENTS.md), all
of them go through :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = [
    "Table",
    "backend_comparison_table",
    "dse_frontier_table",
    "dse_verification_table",
    "format_table",
    "format_value",
]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get a sensible number of digits, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    notes: Iterable[str] = (),
) -> str:
    """One-shot helper: build and render a table."""
    table = Table(title, list(columns))
    for row in rows:
        table.add_row(*row)
    for note in notes:
        table.add_note(note)
    return table.render()


def _format_assignment(assignment) -> str:
    """Compact ``axis=value`` rendering of one design-point assignment."""
    return " ".join(
        f"{key}={format_value(value)}" for key, value in sorted(assignment.items())
    )


def dse_frontier_table(report) -> Table:
    """The analytic-proxy Pareto frontier of one exploration, best-first.

    ``report`` is an :class:`~repro.explore.explore.ExplorationReport`; one
    row per non-dominated design, its objective values, and whether the
    point was re-certified on the engine backend.
    """
    verified = {point.point_id for point in report.verified}
    weighted = getattr(report, "weights", None) is not None
    columns = [
        "point",
        "latency (ms)",
        "off-chip (MiB)",
        "utilization",
        "verified",
        "design",
    ]
    if weighted:
        columns.insert(1, "score")
    table = Table(
        f"Pareto frontier -- space {report.space!r}, strategy {report.strategy!r}",
        columns,
    )
    for point in report.frontier:
        objectives = point.objectives
        row = [
            point.point_id,
            objectives.get("latency", 0.0) * 1e3,
            objectives.get("offchip_traffic", 0.0) / 2**20,
            objectives.get("utilization"),
            point.point_id in verified,
            _format_assignment(point.assignment),
        ]
        if weighted:
            row.insert(1, point.weighted_score)
        table.add_row(*row)
    table.add_note(
        f"{report.candidates} full-fidelity candidate(s) from "
        f"{report.evaluations} proxy evaluation(s) "
        f"({report.proxy_cache_hits} cache hit(s)) over "
        f"{report.feasible_points} feasible point(s); "
        f"proxy wall {report.proxy_wall_s:.2f}s "
        f"({report.proxy} proxy)"
    )
    if weighted:
        pretty = ", ".join(
            f"{key}={value:g}" for key, value in sorted(report.weights.items())
        )
        table.add_note(f"ordered by weighted scalarisation: {pretty}")
    return table


def dse_verification_table(report) -> Table:
    """Engine re-evaluation of the frontier: the proxy's certified contract.

    One row per verified point: proxy vs engine latency, their ratio (proxy
    tightness -- 1.0 means the lower bound is exact), and the two contract
    checks (lower bound, byte-identical traffic).
    """
    table = Table(
        f"Engine verification -- space {report.space!r}, "
        f"strategy {report.strategy!r}",
        ["point", "proxy (ms)", "engine (ms)", "ratio", "bound ok", "traffic ok"],
    )
    for point in report.verified:
        table.add_row(
            point.point_id,
            point.proxy_latency_s * 1e3,
            point.engine_latency_s * 1e3,
            point.latency_ratio,
            point.lower_bound_ok,
            point.traffic_match,
        )
    if report.rank_agreement is not None:
        table.add_note(
            f"proxy-vs-engine latency rank agreement "
            f"(Kendall tau-b): {report.rank_agreement:.3f}"
        )
    table.add_note(
        f"verification wall {report.verify_wall_s:.2f}s on the engine backend"
    )
    return table


def backend_comparison_table(
    engine_outcomes: Sequence[Any],
    analytic_outcomes: Sequence[Any],
    title: str = "Backend comparison",
) -> Table:
    """Engine vs analytic side by side, one row per scenario.

    Both sequences are :class:`~repro.runner.sweep.SweepOutcome` lists over
    the same scenarios (any order).  Rows show both latencies, the analytic/
    engine latency ratio (the differential-contract tightness), and the
    per-scenario execution-time speedup; used by
    ``benchmarks/bench_backend_speed.py``.
    """

    def _latency(result) -> Optional[float]:
        for key in ("latency_s", "end_time"):
            value = result.get(key)
            if value is not None:
                return value
        return None

    by_name = {o.scenario: o for o in analytic_outcomes}
    table = Table(
        title, ["scenario", "engine (ms)", "analytic (ms)", "ratio", "exec speedup"]
    )
    for engine in engine_outcomes:
        analytic = by_name.get(engine.scenario)
        if analytic is None:
            continue
        latency_e = _latency(engine.result)
        latency_a = _latency(analytic.result)
        ratio = latency_a / latency_e if latency_e and latency_a is not None else None
        speedup = engine.elapsed_s / analytic.elapsed_s if analytic.elapsed_s else None
        table.add_row(
            engine.scenario,
            latency_e * 1e3 if latency_e is not None else None,
            latency_a * 1e3 if latency_a is not None else None,
            ratio,
            speedup,
        )
    return table
