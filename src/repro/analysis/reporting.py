"""Plain-text table rendering shared by the benchmark harness.

Every benchmark prints the rows/series of the table or figure it regenerates.
To keep that output consistent (and easy to diff against EXPERIMENTS.md), all
of them go through :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = [
    "Table",
    "backend_comparison_table",
    "dse_frontier_table",
    "dse_verification_table",
    "format_table",
    "format_value",
    "serve_certification_table",
    "serve_curve_table",
    "serve_summary_table",
    "spool_status_table",
]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get a sensible number of digits, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    notes: Iterable[str] = (),
) -> str:
    """One-shot helper: build and render a table."""
    table = Table(title, list(columns))
    for row in rows:
        table.add_row(*row)
    for note in notes:
        table.add_note(note)
    return table.render()


def _format_assignment(assignment) -> str:
    """Compact ``axis=value`` rendering of one design-point assignment."""
    return " ".join(
        f"{key}={format_value(value)}" for key, value in sorted(assignment.items())
    )


def dse_frontier_table(report) -> Table:
    """The analytic-proxy Pareto frontier of one exploration, best-first.

    ``report`` is an :class:`~repro.explore.explore.ExplorationReport`; one
    row per non-dominated design, its objective values, and whether the
    point was re-certified on the engine backend.
    """
    verified = {point.point_id for point in report.verified}
    weighted = getattr(report, "weights", None) is not None
    columns = [
        "point",
        "latency (ms)",
        "off-chip (MiB)",
        "utilization",
        "verified",
        "design",
    ]
    if weighted:
        columns.insert(1, "score")
    table = Table(
        f"Pareto frontier -- space {report.space!r}, strategy {report.strategy!r}",
        columns,
    )
    for point in report.frontier:
        objectives = point.objectives
        row = [
            point.point_id,
            objectives.get("latency", 0.0) * 1e3,
            objectives.get("offchip_traffic", 0.0) / 2**20,
            objectives.get("utilization"),
            point.point_id in verified,
            _format_assignment(point.assignment),
        ]
        if weighted:
            row.insert(1, point.weighted_score)
        table.add_row(*row)
    table.add_note(
        f"{report.candidates} full-fidelity candidate(s) from "
        f"{report.evaluations} proxy evaluation(s) "
        f"({report.proxy_cache_hits} cache hit(s)) over "
        f"{report.feasible_points} feasible point(s); "
        f"proxy wall {report.proxy_wall_s:.2f}s "
        f"({report.proxy} proxy)"
    )
    if weighted:
        pretty = ", ".join(
            f"{key}={value:g}" for key, value in sorted(report.weights.items())
        )
        table.add_note(f"ordered by weighted scalarisation: {pretty}")
    return table


def dse_verification_table(report) -> Table:
    """Engine re-evaluation of the frontier: the proxy's certified contract.

    One row per verified point: proxy vs engine latency, their ratio (proxy
    tightness -- 1.0 means the lower bound is exact), and the two contract
    checks (lower bound, byte-identical traffic).
    """
    table = Table(
        f"Engine verification -- space {report.space!r}, "
        f"strategy {report.strategy!r}",
        ["point", "proxy (ms)", "engine (ms)", "ratio", "bound ok", "traffic ok"],
    )
    for point in report.verified:
        table.add_row(
            point.point_id,
            point.proxy_latency_s * 1e3,
            point.engine_latency_s * 1e3,
            point.latency_ratio,
            point.lower_bound_ok,
            point.traffic_match,
        )
    if report.rank_agreement is not None:
        table.add_note(
            f"proxy-vs-engine latency rank agreement "
            f"(Kendall tau-b): {report.rank_agreement:.3f}"
        )
    table.add_note(
        f"verification wall {report.verify_wall_s:.2f}s on the engine backend"
    )
    return table


def _ms(value: Optional[float]) -> Optional[float]:
    return None if value is None else value * 1e3


def serve_summary_table(result) -> Table:
    """One serving run (a ``serve_sim`` result dict) as a summary table."""
    load = result["offered_load_rps"]
    source = (
        f"closed loop, {result['clients']} client(s)"
        if result["arrival"] == "closed"
        else f"{result['arrival']} arrivals @ {format_value(load)} req/s"
    )
    table = Table(
        f"Serving summary -- workload {result['workload']!r}, "
        f"policy {result['policy']!r} ({source})",
        ["metric", "value"],
    )
    latency = result["latency"]
    queue = result["queue"]
    batches = result["batches"]
    table.add_row("requests issued", result["requests"])
    table.add_row("completed", result["completed"])
    table.add_row("dropped (queue full)", result["dropped"])
    table.add_row("timed out", result["timed_out"])
    table.add_row("goodput (req/s)", result["goodput_rps"])
    table.add_row("server utilization", result["utilization"])
    table.add_row("latency mean (ms)", _ms(latency["mean_s"]))
    table.add_row("latency p50 (ms)", _ms(latency["p50_s"]))
    table.add_row("latency p99 (ms)", _ms(latency["p99_s"]))
    table.add_row("latency p999 (ms)", _ms(latency["p999_s"]))
    table.add_row("latency max (ms)", _ms(latency["max_s"]))
    table.add_row("queue depth max/mean", f"{queue['max_depth']}/"
                  f"{format_value(queue['mean_depth'])}")
    table.add_row("batches (count/mean/max)", f"{batches['count']}/"
                  f"{format_value(batches['mean_size'])}/{batches['max_size']}")
    if not latency["p999_exact"] and latency["p999_s"] is not None:
        table.add_note(
            "p999 widened to the sample max (fewer than 1000 completions); "
            "it is an upper bound, not an estimate"
        )
    table.add_note(f"seed {result['seed']} (replay with --seed {result['seed']})")
    return table


def serve_curve_table(rows, title: str = "Throughput-latency curve") -> Table:
    """Offered load vs goodput and tail latency, one row per load point.

    ``rows`` come from
    :func:`repro.serve.driver.throughput_latency_curve`.
    """
    table = Table(
        title,
        ["load (req/s)", "goodput (req/s)", "p50 (ms)", "p99 (ms)",
         "p999 (ms)", "dropped", "timed out", "util"],
    )
    widened = False
    for row in rows:
        table.add_row(
            row["offered_load_rps"],
            row["goodput_rps"],
            _ms(row["p50_s"]),
            _ms(row["p99_s"]),
            _ms(row["p999_s"]),
            row["dropped"],
            row["timed_out"],
            row["utilization"],
        )
        widened = widened or not row["p999_exact"]
    if widened:
        table.add_note(
            "one or more p999 values widened to the sample max "
            "(fewer than 1000 completions at that load)"
        )
    return table


def serve_certification_table(records) -> Table:
    """Engine re-certification of the sampled batch mix.

    ``records`` come from
    :func:`repro.serve.driver.recertify_batch_mix`: the analytic cost the
    simulator charged vs the cycle-level engine latency for the identical
    ``dse_encoder`` scenario, plus the two contract checks.
    """
    table = Table(
        "Engine re-certification -- sampled batch mix",
        ["class", "batch", "dispatches", "proxy (ms)", "engine (ms)",
         "bound ok", "traffic ok"],
    )
    for record in records:
        table.add_row(
            record["class"],
            record["batch"],
            record["count"],
            record["proxy_latency_s"] * 1e3,
            record["engine_latency_s"] * 1e3,
            record["bound_ok"],
            record["traffic_ok"],
        )
    table.add_note(
        "contract: analytic latency is a lower bound on engine latency "
        "with byte-identical DDR/LPDDR traffic (same as DSE verify-top)"
    )
    return table


def spool_status_table(status, target: str = "") -> Table:
    """A live work-queue snapshot (``spool --status``) as a table.

    ``status`` is the dict :meth:`repro.runner.executors.Spool.status`
    returns (the ``spoold`` server serves the same shape plus its requeue
    counters).  One row per worker -- the union of heartbeating workers and
    workers currently holding claims, so a worker that died mid-job still
    shows up with its stuck claims; throughput is derived from the
    ``processed``/``started`` counters heartbeats publish.
    """
    now = status.get("now", 0.0)
    claims_by_worker: dict = {}
    for claim in status.get("claimed", ()):
        claims_by_worker.setdefault(claim["worker"], []).append(claim)
    workers = {worker["worker"]: worker for worker in status.get("workers", ())}
    title = "Spool status" + (f" -- {target}" if target else "")
    table = Table(
        title,
        ["worker", "beat age (s)", "processed", "jobs/s", "claimed",
         "oldest claim (s)"],
    )
    for name in sorted(set(workers) | set(claims_by_worker)):
        info = workers.get(name)
        claims = claims_by_worker.get(name, [])
        processed = info.get("processed") if info else None
        started = info.get("started") if info else None
        rate = None
        if processed is not None and started is not None and now > started:
            rate = processed / (now - started)
        table.add_row(
            name,
            info["age_s"] if info else None,
            processed,
            rate,
            len(claims),
            max(claim["age_s"] for claim in claims) if claims else None,
        )
    table.add_note(
        f"queue: {status.get('pending', 0)} pending job(s), "
        f"{len(status.get('claimed', ()))} claimed, "
        f"{status.get('results', 0)} uncollected result(s)"
    )
    requeues = status.get("requeues") or {}
    if requeues:
        total = sum(requeues.values())
        table.add_note(
            f"{total} orphan requeue(s) across {len(requeues)} job(s) "
            "since the server started"
        )
    return table


def backend_comparison_table(
    engine_outcomes: Sequence[Any],
    analytic_outcomes: Sequence[Any],
    title: str = "Backend comparison",
) -> Table:
    """Engine vs analytic side by side, one row per scenario.

    Both sequences are :class:`~repro.runner.sweep.SweepOutcome` lists over
    the same scenarios (any order).  Rows show both latencies, the analytic/
    engine latency ratio (the differential-contract tightness), and the
    per-scenario execution-time speedup; used by
    ``benchmarks/bench_backend_speed.py``.
    """

    def _latency(result) -> Optional[float]:
        for key in ("latency_s", "end_time"):
            value = result.get(key)
            if value is not None:
                return value
        return None

    by_name = {o.scenario: o for o in analytic_outcomes}
    table = Table(
        title, ["scenario", "engine (ms)", "analytic (ms)", "ratio", "exec speedup"]
    )
    for engine in engine_outcomes:
        analytic = by_name.get(engine.scenario)
        if analytic is None:
            continue
        latency_e = _latency(engine.result)
        latency_a = _latency(analytic.result)
        ratio = latency_a / latency_e if latency_e and latency_a is not None else None
        speedup = engine.elapsed_s / analytic.elapsed_s if analytic.elapsed_s else None
        table.add_row(
            engine.scenario,
            latency_e * 1e3 if latency_e is not None else None,
            latency_a * 1e3 if latency_a is not None else None,
            ratio,
            speedup,
        )
    return table
