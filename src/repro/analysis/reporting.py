"""Plain-text table rendering shared by the benchmark harness.

Every benchmark prints the rows/series of the table or figure it regenerates.
To keep that output consistent (and easy to diff against EXPERIMENTS.md), all
of them go through :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "backend_comparison_table", "format_table", "format_value"]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get a sensible number of digits, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]], notes: Iterable[str] = ()) -> str:
    """One-shot helper: build and render a table."""
    table = Table(title, list(columns))
    for row in rows:
        table.add_row(*row)
    for note in notes:
        table.add_note(note)
    return table.render()


def backend_comparison_table(engine_outcomes: Sequence[Any],
                             analytic_outcomes: Sequence[Any],
                             title: str = "Backend comparison") -> Table:
    """Engine vs analytic side by side, one row per scenario.

    Both sequences are :class:`~repro.runner.sweep.SweepOutcome` lists over
    the same scenarios (any order).  Rows show both latencies, the analytic/
    engine latency ratio (the differential-contract tightness), and the
    per-scenario execution-time speedup; used by
    ``benchmarks/bench_backend_speed.py``.
    """
    def _latency(result) -> Optional[float]:
        for key in ("latency_s", "end_time"):
            value = result.get(key)
            if value is not None:
                return value
        return None

    by_name = {o.scenario: o for o in analytic_outcomes}
    table = Table(title, ["scenario", "engine (ms)", "analytic (ms)",
                          "ratio", "exec speedup"])
    for engine in engine_outcomes:
        analytic = by_name.get(engine.scenario)
        if analytic is None:
            continue
        latency_e = _latency(engine.result)
        latency_a = _latency(analytic.result)
        ratio = (latency_a / latency_e
                 if latency_e and latency_a is not None else None)
        speedup = (engine.elapsed_s / analytic.elapsed_s
                   if analytic.elapsed_s else None)
        table.add_row(engine.scenario,
                      latency_e * 1e3 if latency_e is not None else None,
                      latency_a * 1e3 if latency_a is not None else None,
                      ratio, speedup)
    return table
