"""Analytical models and report rendering shared by the benchmark harness."""

from .roofline import (
    ResourceRoofline,
    RooflinePoint,
    roofline_latency,
    machine_balance,
)
from .instruction_stats import InstructionAnalysis, analyze_program
from .energy import EnergyPoint, gpu_energy_table, vck190_energy_point
from .pareto import dominates, kendall_tau, pareto_frontier, pareto_ranks
from .reporting import Table, format_table, format_value

__all__ = [
    "EnergyPoint",
    "InstructionAnalysis",
    "ResourceRoofline",
    "RooflinePoint",
    "Table",
    "analyze_program",
    "dominates",
    "format_table",
    "format_value",
    "gpu_energy_table",
    "kendall_tau",
    "machine_balance",
    "pareto_frontier",
    "pareto_ranks",
    "roofline_latency",
    "vck190_energy_point",
]
