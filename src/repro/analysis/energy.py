"""Energy-efficiency analysis for the GPU comparison (Table 10).

Efficiency is always sequences per joule: ``batch / (latency * power)``.  The
GPU rows use the published latencies and datasheet powers from
:mod:`repro.hardware.gpu`; the VCK190 row uses the simulated RSN-XNN latency
and the measured board powers the paper reports (45.5 W operating, 18.2 W
dynamic at batch 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hardware.gpu import GPU_SPECS

__all__ = [
    "EnergyPoint",
    "gpu_energy_table",
    "vck190_energy_point",
    "VCK190_OPERATING_POWER_W",
    "VCK190_DYNAMIC_POWER_W",
]


#: board power measured with BEAM at batch 8 (Table 10).
VCK190_OPERATING_POWER_W = 45.5
VCK190_DYNAMIC_POWER_W = 18.2


@dataclass(frozen=True)
class EnergyPoint:
    """Latency, power, and derived efficiency of one device at one batch size."""

    device: str
    precision: str
    batch: int
    latency_ms: float
    operating_power_w: float
    dynamic_power_w: float
    dram_traffic_gb: Optional[float] = None

    @property
    def operating_efficiency_seq_per_j(self) -> float:
        return self.batch / (self.latency_ms / 1e3 * self.operating_power_w)

    @property
    def dynamic_efficiency_seq_per_j(self) -> float:
        return self.batch / (self.latency_ms / 1e3 * self.dynamic_power_w)


def gpu_energy_table(batch: int = 8) -> List[EnergyPoint]:
    """Energy points for every GPU in Table 10 at the given batch size."""
    points = []
    for spec in GPU_SPECS.values():
        latency = spec.published_latency_ms.get(batch)
        if latency is None:
            continue
        points.append(EnergyPoint(
            device=spec.name, precision=spec.precision, batch=batch,
            latency_ms=latency,
            operating_power_w=spec.operating_power_w,
            dynamic_power_w=spec.dynamic_power_w,
            dram_traffic_gb=spec.dram_traffic_gb_b8 if batch == 8 else None,
        ))
    return points


def vck190_energy_point(latency_ms: float, batch: int = 8,
                        dram_traffic_gb: Optional[float] = None,
                        operating_power_w: float = VCK190_OPERATING_POWER_W,
                        dynamic_power_w: float = VCK190_DYNAMIC_POWER_W) -> EnergyPoint:
    """Energy point for RSN-XNN on the VCK190 from a simulated latency."""
    return EnergyPoint(
        device="VCK190", precision="fp32", batch=batch, latency_ms=latency_ms,
        operating_power_w=operating_power_w, dynamic_power_w=dynamic_power_w,
        dram_traffic_gb=dram_traffic_gb,
    )
