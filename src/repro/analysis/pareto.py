"""Multi-objective dominance, Pareto frontiers, and rank agreement.

The design-space explorer (:mod:`repro.explore`) searches with the cheap
analytic proxy and then re-evaluates its frontier on the cycle-level engine;
this module holds the objective-space mathematics both phases share:

* :func:`pareto_frontier` -- the set of non-dominated points under mixed
  minimise/maximise senses (latency and off-chip traffic down, utilisation
  up);
* :func:`pareto_ranks` -- successive-frontier ranks ("peel" depth), the
  unit-free cohort score successive halving selects on;
* :func:`kendall_tau` -- the tau-b rank-correlation between the proxy's
  ordering and the engine's verified ordering, which quantifies how much the
  certified-lower-bound proxy can be trusted to *rank* designs even where its
  absolute latencies are optimistic.

Everything is pure Python.  The pairwise helpers (:func:`dominates`,
:func:`kendall_tau`) keep their O(n^2) formulations -- they only ever see
small cohorts (verified frontiers of tens of points).
:func:`pareto_frontier`, however, sits on the sharded-DSE hot path: an
exploration extracts the frontier of its *entire candidate pool*, which at
the 10^5--10^6-point scale made the naive all-pairs scan dominate the whole
run (minutes of frontier extraction after seconds of chunked evaluation).
It therefore uses the sorted-archive formulation -- O(n log n + n*f) for a
frontier of size f -- which returns bit-identical indices.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = [
    "MAXIMIZE",
    "MINIMIZE",
    "dominates",
    "kendall_tau",
    "pareto_frontier",
    "pareto_ranks",
    "weighted_scalarization",
]

MINIMIZE = "min"
MAXIMIZE = "max"


def _check(points: Sequence[Sequence[float]], senses: Sequence[str]) -> None:
    for sense in senses:
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ValueError(
                f"unknown sense {sense!r}; use {MINIMIZE!r} or {MAXIMIZE!r}"
            )
    for point in points:
        if len(point) != len(senses):
            raise ValueError(
                f"point {tuple(point)} has {len(point)} "
                f"objectives but {len(senses)} senses given"
            )


def dominates(a: Sequence[float], b: Sequence[float], senses: Sequence[str]) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and better
    somewhere (the standard strict Pareto dominance, sense-aware)."""
    _check((a, b), senses)
    strictly_better = False
    for value_a, value_b, sense in zip(a, b, senses):
        if sense == MINIMIZE:
            if value_a > value_b:
                return False
            strictly_better = strictly_better or value_a < value_b
        else:
            if value_a < value_b:
                return False
            strictly_better = strictly_better or value_a > value_b
    return strictly_better


def pareto_frontier(
    points: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[int]:
    """Indices of the non-dominated points, in their original order.

    Duplicate points are all kept (none dominates the other), so callers that
    dedup by design identity keep exactly one representative per design.

    Implementation: points are flipped to all-maximise form and visited in
    lexicographically descending order, so a visitor can only ever be
    dominated by an *already admitted* point (a dominator is elementwise >=
    with one coordinate strictly greater, hence lexicographically greater;
    and by transitivity every dominated point has a dominator on the global
    frontier).  One archive scan per point replaces the all-pairs scan --
    O(n log n + n*f) for a frontier of size f -- with exactly the naive
    formulation's result: the archive is the global frontier, equal points
    never block each other, and indices come back in original order.
    """
    _check(points, senses)
    if not points:
        return []
    flips = [-1.0 if sense == MINIMIZE else 1.0 for sense in senses]
    keyed = [
        (tuple(flip * value for flip, value in zip(flips, point)), index)
        for index, point in enumerate(points)
    ]
    keyed.sort(reverse=True)
    archive: List[tuple] = []
    frontier = []
    for key, index in keyed:
        for other in archive:
            if other != key and all(o >= k for o, k in zip(other, key)):
                break  # dominated by an admitted (lex-greater) point
        else:
            archive.append(key)
            frontier.append(index)
    frontier.sort()
    return frontier


def pareto_ranks(
    points: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[int]:
    """Non-domination rank of every point (0 = on the frontier).

    Rank r is the frontier of what remains after peeling ranks ``< r`` --
    the NSGA-style successive-frontier depth.  Unlike raw objective values
    this is unit-free, which is what makes it usable as the selection score
    for successive halving across wildly different objective scales.
    """
    _check(points, senses)
    ranks: List[Optional[int]] = [None] * len(points)
    rank = 0
    remaining = list(range(len(points)))
    while remaining:
        peel = pareto_frontier([points[i] for i in remaining], senses)
        for position in peel:
            ranks[remaining[position]] = rank
        peeled = set(peel)
        remaining = [
            i for position, i in enumerate(remaining) if position not in peeled
        ]
        rank += 1
    return ranks  # type: ignore[return-value]


def weighted_scalarization(
    points: Sequence[Sequence[float]],
    senses: Sequence[str],
    weights: Sequence[float],
) -> List[float]:
    """Weighted-sum scalarisation of a multi-objective cohort; lower is better.

    Each objective column is min-max normalised over the cohort to [0, 1]
    with 0 at the cohort's *best* value for that sense (smallest under
    ``min``, largest under ``max``) and 1 at its worst; a constant column
    normalises to 0 everywhere (it cannot discriminate).  The score of a
    point is the weight-weighted sum of its normalised objectives -- the
    user-tunable alternative to pure non-domination rank: weights express
    how many units of normalised regret in one objective the user trades
    for one unit in another.

    ``weights`` must align with ``senses``, be non-negative, and contain at
    least one positive entry.  Scores are comparable only within one call
    (the normalisation is cohort-relative, exactly like Pareto ranks).
    """
    _check(points, senses)
    if len(weights) != len(senses):
        raise ValueError(
            f"{len(weights)} weight(s) given for {len(senses)} objective(s)"
        )
    for weight in weights:
        if not math.isfinite(weight):
            raise ValueError(f"weights must be finite, got {weight}")
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
    if not any(weight > 0 for weight in weights):
        raise ValueError("at least one weight must be positive")
    if not points:
        return []
    scores = [0.0] * len(points)
    for column, (sense, weight) in enumerate(zip(senses, weights)):
        if not weight:
            continue
        values = [point[column] for point in points]
        lo, hi = min(values), max(values)
        span = hi - lo
        if not span:
            continue
        for index, value in enumerate(values):
            if sense == MINIMIZE:
                normalised = (value - lo) / span
            else:
                normalised = (hi - value) / span
            scores[index] += weight * normalised
    return scores


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> Optional[float]:
    """Kendall's tau-b between two paired samples (ties corrected).

    Returns ``None`` when either sample is constant (tau is undefined -- no
    pair is discordant or concordant), and for fewer than two pairs.
    """
    if len(x) != len(y):
        raise ValueError(f"paired samples differ in length: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return None
    concordant = discordant = ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    pairs = n * (n - 1) // 2
    denom_x = pairs - ties_x
    denom_y = pairs - ties_y
    if denom_x == 0 or denom_y == 0:
        return None
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5
