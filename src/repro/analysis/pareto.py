"""Multi-objective dominance, Pareto frontiers, and rank agreement.

The design-space explorer (:mod:`repro.explore`) searches with the cheap
analytic proxy and then re-evaluates its frontier on the cycle-level engine;
this module holds the objective-space mathematics both phases share:

* :func:`pareto_frontier` -- the set of non-dominated points under mixed
  minimise/maximise senses (latency and off-chip traffic down, utilisation
  up);
* :func:`pareto_ranks` -- successive-frontier ranks ("peel" depth), the
  unit-free cohort score successive halving selects on;
* :func:`kendall_tau` -- the tau-b rank-correlation between the proxy's
  ordering and the engine's verified ordering, which quantifies how much the
  certified-lower-bound proxy can be trusted to *rank* designs even where its
  absolute latencies are optimistic.

Everything is pure Python over small point sets (frontiers of tens of
points), so the O(n^2) formulations are the clearest and entirely adequate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["MAXIMIZE", "MINIMIZE", "dominates", "kendall_tau",
           "pareto_frontier", "pareto_ranks"]

MINIMIZE = "min"
MAXIMIZE = "max"


def _check(points: Sequence[Sequence[float]],
           senses: Sequence[str]) -> None:
    for sense in senses:
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ValueError(f"unknown sense {sense!r}; use "
                             f"{MINIMIZE!r} or {MAXIMIZE!r}")
    for point in points:
        if len(point) != len(senses):
            raise ValueError(f"point {tuple(point)} has {len(point)} "
                             f"objectives but {len(senses)} senses given")


def dominates(a: Sequence[float], b: Sequence[float],
              senses: Sequence[str]) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and better
    somewhere (the standard strict Pareto dominance, sense-aware)."""
    _check((a, b), senses)
    strictly_better = False
    for value_a, value_b, sense in zip(a, b, senses):
        if sense == MINIMIZE:
            if value_a > value_b:
                return False
            strictly_better = strictly_better or value_a < value_b
        else:
            if value_a < value_b:
                return False
            strictly_better = strictly_better or value_a > value_b
    return strictly_better


def pareto_frontier(points: Sequence[Sequence[float]],
                    senses: Sequence[str]) -> List[int]:
    """Indices of the non-dominated points, in their original order.

    Duplicate points are all kept (none dominates the other), so callers that
    dedup by design identity keep exactly one representative per design.
    """
    _check(points, senses)
    frontier = []
    for index, point in enumerate(points):
        if not any(dominates(other, point, senses)
                   for other in points):
            frontier.append(index)
    return frontier


def pareto_ranks(points: Sequence[Sequence[float]],
                 senses: Sequence[str]) -> List[int]:
    """Non-domination rank of every point (0 = on the frontier).

    Rank r is the frontier of what remains after peeling ranks ``< r`` --
    the NSGA-style successive-frontier depth.  Unlike raw objective values
    this is unit-free, which is what makes it usable as the selection score
    for successive halving across wildly different objective scales.
    """
    _check(points, senses)
    ranks: List[Optional[int]] = [None] * len(points)
    rank = 0
    remaining = list(range(len(points)))
    while remaining:
        peel = pareto_frontier([points[i] for i in remaining], senses)
        for position in peel:
            ranks[remaining[position]] = rank
        remaining = [i for position, i in enumerate(remaining)
                     if position not in set(peel)]
        rank += 1
    return ranks  # type: ignore[return-value]


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> Optional[float]:
    """Kendall's tau-b between two paired samples (ties corrected).

    Returns ``None`` when either sample is constant (tau is undefined -- no
    pair is discordant or concordant), and for fewer than two pairs.
    """
    if len(x) != len(y):
        raise ValueError(f"paired samples differ in length: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return None
    concordant = discordant = ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    pairs = n * (n - 1) // 2
    denom_x = pairs - ties_x
    denom_y = pairs - ties_y
    if denom_x == 0 or denom_y == 0:
        return None
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5
