"""Instruction-overhead analysis (Fig. 9 and the Section 5.1 statistics).

Given an RSN program (and, optionally, the execution latency and FLOPs of the
workload it drives), this module computes the quantities the paper reports:

* RSN instruction bytes vs translated uOP bytes per FU type and the resulting
  compression ratios (Fig. 9),
* the number of RSN instructions per FU type (Section 5.1's 1685-instruction
  breakdown),
* the instruction processing rate (bytes of instructions per second of
  execution) and its fraction of off-chip bandwidth, and
* the compute-to-instruction ratio in FLOPs per instruction byte (the paper's
  "1 byte of instruction drives up to 1.6 GFLOPs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core import InstructionSizeReport, RSNProgram
from ..hardware.vck190 import VCK190, VCK190Spec

__all__ = ["InstructionAnalysis", "analyze_program"]


@dataclass
class InstructionAnalysis:
    """Derived instruction-overhead statistics for one program."""

    size_report: InstructionSizeReport
    packet_count: int
    instruction_bytes: int
    uop_bytes: int
    aie_uop_bytes: int = 0
    latency_s: Optional[float] = None
    flops: Optional[float] = None
    spec: VCK190Spec = VCK190

    # ------------------------------------------------------------ per-type

    def instructions_per_type(self) -> Dict[str, int]:
        return dict(self.size_report.instruction_counts)

    def compression_ratios(self) -> Dict[str, float]:
        return {fu_type: self.size_report.compression_ratio(fu_type)
                for fu_type in self.size_report.fu_types()}

    # ------------------------------------------------------------- aggregate

    @property
    def instruction_processing_rate(self) -> Optional[float]:
        """Bytes of RSN instructions consumed per second of execution."""
        if not self.latency_s:
            return None
        return self.instruction_bytes / self.latency_s

    @property
    def bandwidth_fraction(self) -> Optional[float]:
        """Instruction traffic as a fraction of total off-chip bandwidth."""
        rate = self.instruction_processing_rate
        if rate is None:
            return None
        return rate / self.spec.total_offchip_bw

    @property
    def flops_per_instruction_byte(self) -> Optional[float]:
        """Compute-to-instruction ratio (includes AIE-local control words)."""
        if self.flops is None:
            return None
        total_bytes = self.instruction_bytes + self.aie_uop_bytes
        if not total_bytes:
            return None
        return self.flops / total_bytes


def analyze_program(program: RSNProgram, latency_s: Optional[float] = None,
                    flops: Optional[float] = None, aie_uop_bytes: int = 0,
                    spec: VCK190Spec = VCK190) -> InstructionAnalysis:
    """Compute the Fig. 9 / Section 5.1 statistics for ``program``."""
    report = program.size_report()
    return InstructionAnalysis(
        size_report=report,
        packet_count=program.packet_count,
        instruction_bytes=program.nbytes,
        uop_bytes=report.total_uop_bytes(),
        aie_uop_bytes=aie_uop_bytes,
        latency_s=latency_s,
        flops=flops,
        spec=spec,
    )
