"""Roofline latency estimation (used by Table 3, Table 11, and sanity checks).

The paper repeatedly reasons with the roofline formula -- latency is the
maximum of compute time at the achievable FLOP rate and transfer time at the
achievable bandwidth.  This module provides that formula once so the mapping
analysis, the bandwidth sweep bounds, and the tests all share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..hardware.vck190 import VCK190, VCK190Spec
from ..workloads.layers import MatMulLayer

__all__ = [
    "RooflinePoint",
    "ResourceRoofline",
    "pipeline_roofline",
    "roofline_latency",
    "machine_balance",
    "layer_roofline",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One roofline evaluation."""

    flops: float
    bytes: float
    compute_s: float
    memory_s: float

    @property
    def latency_s(self) -> float:
        return max(self.compute_s, self.memory_s)

    @property
    def compute_bound(self) -> bool:
        return self.compute_s >= self.memory_s

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes if self.bytes else float("inf")


@dataclass(frozen=True)
class ResourceRoofline:
    """A multi-resource roofline: per-resource busy time, bottleneck, slack.

    The classic two-term roofline generalises to any number of serially
    occupied resources (the DDR channel, the LPDDR channel, the busiest MME,
    the busiest MemC, ...): each resource must be busy for at least its tallied
    time, so the segment cannot finish before the *maximum* of those times.
    This is the formula the analytic fast-model backend evaluates instead of
    running the event loop, and -- because every tallied time is a true lower
    bound on the corresponding FU's serial occupancy in the event-driven
    engine -- :attr:`latency_s` is a certified lower bound on the engine's
    cycle-level result (the differential test suite pins this contract).
    """

    busy_s: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.busy_s:
            raise ValueError("ResourceRoofline needs at least one resource")
        for resource, seconds in self.busy_s.items():
            if seconds < 0:
                raise ValueError(f"resource {resource!r} has negative busy time")

    @property
    def latency_s(self) -> float:
        return max(self.busy_s.values())

    @property
    def bottleneck(self) -> str:
        """Name of the resource whose busy time sets the latency."""
        return max(self.busy_s, key=lambda resource: self.busy_s[resource])

    def utilization(self, resource: str) -> float:
        """Fraction of the segment's span this resource is busy (1 = bottleneck)."""
        latency = self.latency_s
        if not latency:
            return 0.0
        return self.busy_s[resource] / latency

    def utilizations(self) -> Dict[str, float]:
        return {resource: self.utilization(resource) for resource in self.busy_s}


def pipeline_roofline(
    chip_busy_s: Sequence[float], link_busy_s: Sequence[float] = ()
) -> ResourceRoofline:
    """Steady-state roofline of a multi-chip segment pipeline.

    With the workload's segments partitioned across chips and boundary
    activations crossing inter-chip links, the steady-state interval between
    task completions is set by the busiest *stage* -- and a link is one more
    contended resource, exactly like a chip: each task occupies hop ``i`` for
    ``link_busy_s[i]`` seconds, so throughput cannot exceed the reciprocal of
    any stage's busy time.  :attr:`ResourceRoofline.latency_s` is therefore
    the pipeline's steady-state initiation interval (a lower bound, by the
    same argument that makes every other roofline here a lower bound).
    """
    resources: Dict[str, float] = {}
    for index, busy in enumerate(chip_busy_s):
        resources[f"chip{index}"] = busy
    for index, busy in enumerate(link_busy_s):
        resources[f"link{index}"] = busy
    return ResourceRoofline(resources)


def machine_balance(achieved_flops: float, bandwidth: float) -> float:
    """FLOPs per byte at which compute and memory time are equal."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return achieved_flops / bandwidth


def roofline_latency(
    flops: float, nbytes: float, achieved_flops: float, bandwidth: float
) -> RooflinePoint:
    """Evaluate the roofline for a kernel of ``flops`` work and ``nbytes`` traffic."""
    if flops < 0 or nbytes < 0:
        raise ValueError("flops and nbytes must be non-negative")
    if achieved_flops <= 0 or bandwidth <= 0:
        raise ValueError("achieved_flops and bandwidth must be positive")
    return RooflinePoint(
        flops=flops,
        bytes=nbytes,
        compute_s=flops / achieved_flops,
        memory_s=nbytes / bandwidth,
    )


def layer_roofline(
    layer: MatMulLayer, achieved_flops: float = 6.7e12, spec: VCK190Spec = VCK190
) -> RooflinePoint:
    """Roofline point of one layer on the VCK190, using observed bandwidths."""
    bandwidth = spec.ddr_read_bw + spec.lpddr_read_bw
    return roofline_latency(layer.flops, layer.offchip_bytes, achieved_flops, bandwidth)
