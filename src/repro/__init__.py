"""repro: a Python reproduction of the Reconfigurable Stream Network Architecture.

The package is organised as described in ``DESIGN.md``:

* :mod:`repro.core` -- the RSN abstraction itself (streams, functional units,
  datapaths, paths, instruction packets, decoder hierarchy, event engine).
* :mod:`repro.hardware` -- models of the platforms the paper evaluates on
  (VCK190 with its AI-engine array and DDR/LPDDR channels, NVIDIA GPUs, power
  and area models).
* :mod:`repro.xnn` -- RSN-XNN, the transformer-encoder overlay case study
  (its FUs, datapath, code generator, mapping and bandwidth orchestration).
* :mod:`repro.workloads` -- BERT/ViT/NCF/MLP layer inventories and NumPy
  reference implementations used for functional validation.
* :mod:`repro.baselines` -- the comparison points (CHARM-style accelerator,
  layer-serial overlay).
* :mod:`repro.analysis` -- roofline/latency/energy/instruction analyses and
  the report renderers used by the benchmark harness.
* :mod:`repro.rsnlib` -- the RSNlib-style high-level model builder that
  compiles a transformer description into RSN instruction programs.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
