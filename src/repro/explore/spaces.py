"""The named design-space catalogue.

Four spaces ship with the repository:

* ``encoder`` -- the full RSN-XNN encoder design space the paper's results
  are points in: workload shape (batch, sequence length), GEMM tile sizes,
  the attention mapping (pipelined vs task-by-task, Fig. 3 types D vs B),
  off-chip bandwidth scaling, MemB scratchpad depth, and the MME count.
  A few thousand raw points; the feasibility constraints prune combinations
  whose RHS tile cannot fit the scratchpad and MME counts the AIE array
  cannot group.
* ``encoder-smoke`` -- a 16-point slice of the same space for CI smoke runs
  and the test suite: small sequence lengths so even the engine-verification
  phase completes in seconds.
* ``chiplet-encoder`` -- the multi-chip scale-out axis on top of the encoder
  space: chip count, inter-chip link bandwidth and per-hop latency join the
  per-chip axes, so the search trades chip count vs link bandwidth vs
  per-chip scratchpad -- with area and energy available as weighted
  objectives (``dse_chiplet`` kind).
* ``chiplet-smoke`` -- a 12-point chiplet slice for CI smoke runs.

All evaluate through scenario kinds that support the ``analytic`` backend
(search proxy) and the ``engine`` backend (verification) over identical
parameters.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from .space import Axis, Constraint, DesignSpace

__all__ = ["SPACES", "get_space", "space_names"]

_KIB = 1024

#: fp32 element size; must match the executor/analytic tile arithmetic.
_ELEMENT_BYTES = 4


def _rhs_tile_fits_memb(assignment: Mapping[str, Any]) -> bool:
    """The RHS weight tile (tile_k x super_n) must fit one MemB scratchpad."""
    tile_bytes = assignment["tile_k"] * assignment["super_n"] * _ELEMENT_BYTES
    return tile_bytes <= assignment["mem_b_bytes"]


def _mme_plan_fits(assignment: Mapping[str, Any]) -> bool:
    """The MME grouping must fit the AIE array's tile and stream budgets."""
    from ..xnn import XNNConfig

    try:
        XNNConfig.for_design(num_mme=assignment["num_mme"])
    except ValueError:
        return False
    return True


def _encoder_space() -> DesignSpace:
    return DesignSpace(
        name="encoder",
        kind="dse_encoder",
        description="RSN-XNN BERT-Large encoder layer design space",
        base_params={"model": "bert_large"},
        axes=(
            Axis("batch", (1, 4), "workload batch size"),
            Axis("seq_len", (128, 256, 384), "workload sequence length"),
            Axis(
                "pipeline_attention",
                (False, True),
                "attention mapping: Fig. 3 type B (off-chip scores) vs "
                "type D (pipelined heads)",
            ),
            Axis("tile_m", (384, 768), "LHS/output row-tile extent"),
            Axis("tile_k", (64, 128), "accumulation tile extent"),
            Axis("super_n", (512, 1024), "output super-column extent"),
            Axis("bandwidth_scale", (0.5, 1.0, 2.0), "DDR+LPDDR bandwidth scaling"),
            Axis(
                "mem_b_bytes",
                (256 * _KIB, 1024 * _KIB),
                "MemB weight-scratchpad depth",
            ),
            Axis("num_mme", (3, 4, 6), "MME FU count (AIE groups)"),
        ),
        constraints=(
            Constraint(
                "rhs_tile_fits_memb",
                _rhs_tile_fits_memb,
                "tile_k * super_n * 4B <= mem_b_bytes",
            ),
            Constraint(
                "mme_plan_fits",
                _mme_plan_fits,
                "MME grouping fits the AIE tile/stream budget",
            ),
        ),
    )


def _encoder_smoke_space() -> DesignSpace:
    return DesignSpace(
        name="encoder-smoke",
        kind="dse_encoder",
        description="16-point encoder slice for CI smoke runs",
        base_params={"model": "bert_large", "batch": 1},
        axes=(
            Axis("seq_len", (64, 128)),
            Axis("pipeline_attention", (False, True)),
            Axis("tile_m", (256, 768)),
            Axis("bandwidth_scale", (1.0, 2.0)),
        ),
    )


def _chips_cover_segments(assignment: Mapping[str, Any]) -> bool:
    """Every chip needs at least one of the encoder's simulation groups."""
    from ..xnn.partition import ENCODER_SEGMENT_NAMES

    return assignment["num_chips"] <= len(ENCODER_SEGMENT_NAMES)


def _chiplet_space() -> DesignSpace:
    return DesignSpace(
        name="chiplet-encoder",
        kind="dse_chiplet",
        description="Multi-chip scale-out of the RSN-XNN encoder design space",
        base_params={"model": "bert_large"},
        axes=(
            Axis("batch", (1, 4), "workload batch size"),
            Axis("seq_len", (128, 256), "workload sequence length"),
            Axis(
                "pipeline_attention",
                (False, True),
                "attention mapping: Fig. 3 type B vs type D",
            ),
            Axis("tile_m", (384, 768), "LHS/output row-tile extent"),
            Axis("tile_k", (64, 128), "accumulation tile extent"),
            Axis("super_n", (512, 1024), "output super-column extent"),
            Axis("bandwidth_scale", (1.0, 2.0), "DDR+LPDDR bandwidth scaling"),
            Axis(
                "mem_b_bytes",
                (256 * _KIB, 1024 * _KIB),
                "per-chip MemB weight-scratchpad depth",
            ),
            Axis("num_mme", (3, 6), "per-chip MME FU count (AIE groups)"),
            Axis("num_chips", (1, 2, 3), "chips in the segment pipeline"),
            Axis(
                "link_gbs",
                (16.0, 64.0, 256.0),
                "inter-chip link bandwidth (GB/s)",
            ),
            Axis("link_hop_us", (0.5, 2.0), "per-hop link latency (us)"),
        ),
        constraints=(
            Constraint(
                "rhs_tile_fits_memb",
                _rhs_tile_fits_memb,
                "tile_k * super_n * 4B <= mem_b_bytes",
            ),
            Constraint(
                "mme_plan_fits",
                _mme_plan_fits,
                "MME grouping fits the AIE tile/stream budget",
            ),
            Constraint(
                "chips_cover_segments",
                _chips_cover_segments,
                "num_chips <= encoder simulation-group count",
            ),
        ),
    )


def _chiplet_smoke_space() -> DesignSpace:
    return DesignSpace(
        name="chiplet-smoke",
        kind="dse_chiplet",
        description="12-point chiplet slice for CI smoke runs",
        base_params={"model": "bert_large", "batch": 1},
        axes=(
            Axis("seq_len", (64, 128)),
            Axis("num_chips", (1, 2, 3)),
            Axis("link_gbs", (16.0, 256.0)),
        ),
    )


#: name -> zero-argument space factory.  Factories (not instances) so each
#: caller gets an independent object and import stays cheap.
SPACES = {
    "encoder": _encoder_space,
    "encoder-smoke": _encoder_smoke_space,
    "chiplet-encoder": _chiplet_space,
    "chiplet-smoke": _chiplet_smoke_space,
}


def space_names() -> List[str]:
    return sorted(SPACES)


def get_space(name: str) -> DesignSpace:
    try:
        factory = SPACES[name]
    except KeyError:
        raise KeyError(
            f"unknown design space {name!r}; known: {space_names()}"
        ) from None
    return factory()
