"""Two-phase design-space exploration: analytic search, engine verification.

:func:`run_exploration` is the subsystem's engine room.  Phase one hands the
strategy an evaluation callback that batches candidate points through the
existing sweep front-end (:func:`~repro.runner.sweep.run_sweep`) on the
**analytic** backend -- execution executor (serial, local pool, or the
distributed work queue of :mod:`repro.runner.executors`) and on-disk result
cache included, so a repeated exploration is served from cache
byte-identically and a single exploration can fan its evaluations out
beyond one host.  Phase two takes
the Pareto frontier of the full-fidelity candidates (latency down, off-chip
traffic down, utilisation up), re-evaluates the top ``verify_top`` frontier
points on the cycle-level **engine** backend, and checks the certified
contract on every verified point: the analytic latency must lower-bound the
engine latency, and the DDR/LPDDR traffic must match byte for byte.  The
report additionally quantifies proxy trustworthiness as the Kendall tau-b
rank agreement between proxy and verified latency orderings.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.pareto import kendall_tau, pareto_frontier, weighted_scalarization
from ..runner.cache import ResultCache
from ..runner.executors import Executor, default_executor
from ..runner.sweep import _validate_chunk_size, evaluate_chunked, run_sweep
from .space import DesignSpace
from .strategies import DEFAULT_HALVING_OBJECTIVES, Candidate, SearchStrategy

__all__ = [
    "COST_OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "ExplorationReport",
    "FrontierPoint",
    "Objective",
    "PIPELINE_THROUGHPUT_OBJECTIVE",
    "VerifiedPoint",
    "objectives_for",
    "resolve_batch_runner",
    "run_exploration",
    "validate_weights",
]

#: relative slack on the lower-bound comparison -- pure float-noise headroom,
#: the analytic model itself is a true bound.
_CONTRACT_RTOL = 1e-9


@dataclass(frozen=True)
class Objective:
    """One Pareto axis: a payload key and an optimisation sense."""

    name: str
    key: str
    sense: str  # "min" or "max"

    def value(self, payload: Mapping[str, Any]) -> float:
        if self.key not in payload:
            raise KeyError(
                f"objective {self.name!r}: key {self.key!r} missing from "
                f"payload {sorted(payload)}"
            )
        return payload[self.key]


#: display names for the canonical (payload key, sense) axes defined in
#: :data:`repro.explore.strategies.DEFAULT_HALVING_OBJECTIVES` -- deriving
#: from that single source keeps halving's selection axes and the frontier
#: extraction axes from ever drifting apart.
_OBJECTIVE_NAMES = {
    "latency_s": "latency",
    "offchip_bytes": "offchip_traffic",
    "utilization": "utilization",
}

DEFAULT_OBJECTIVES: Tuple[Objective, ...] = tuple(
    Objective(_OBJECTIVE_NAMES[key], key, sense)
    for key, sense in DEFAULT_HALVING_OBJECTIVES
)

#: implementation-cost axes every DSE payload carries (``dse_encoder`` and
#: ``dse_chiplet`` alike): total design area and energy per task.  Scorable
#: through ``--weights`` so a weighted exploration can trade chips and link
#: bandwidth against silicon and joules.
COST_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("area", "area_luts", "min"),
    Objective("energy", "energy_j", "min"),
)

#: steady-state pipeline throughput (tasks/s).  For a single chip this is
#: simply ``batch / latency_s``; for a multi-chip pipeline it is set by the
#: busiest stage (chip or link), which is what makes adding chips worth
#: anything on the frontier even though per-task latency only grows.
PIPELINE_THROUGHPUT_OBJECTIVE = Objective(
    "pipeline_throughput", "pipeline_tasks_per_s", "max"
)


def objectives_for(
    space: DesignSpace, weights: Optional[Mapping[str, float]] = None
) -> Tuple[Objective, ...]:
    """The objective axes one exploration of ``space`` should use.

    Chiplet spaces always carry the throughput and cost axes -- without
    them every multi-chip point would be Pareto-dominated by its
    single-chip sibling (same traffic, strictly higher per-task latency).
    Single-chip spaces keep the classic three axes unless the caller's
    ``weights`` explicitly name a throughput/cost key, which keeps the
    historical frontiers (and their cached CI baselines) byte-identical.
    """
    extras = (PIPELINE_THROUGHPUT_OBJECTIVE,) + COST_OBJECTIVES
    if space.kind == "dse_chiplet":
        return DEFAULT_OBJECTIVES + extras
    if weights:
        requested = set(weights)
        opted_in = tuple(o for o in extras if o.key in requested)
        if opted_in:
            return DEFAULT_OBJECTIVES + opted_in
    return DEFAULT_OBJECTIVES


@dataclass
class FrontierPoint:
    """One non-dominated design, as found by the analytic proxy."""

    point_id: str
    assignment: Dict[str, Any]
    objectives: Dict[str, float]
    #: pool-relative weighted-scalarisation score (lower = better), present
    #: only when the exploration ran with ``weights``.
    weighted_score: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "point_id": self.point_id,
            "assignment": self.assignment,
            "objectives": self.objectives,
        }
        if self.weighted_score is not None:
            payload["weighted_score"] = self.weighted_score
        return payload


@dataclass
class VerifiedPoint:
    """A frontier point after cycle-level re-evaluation on the engine."""

    point_id: str
    assignment: Dict[str, Any]
    proxy_latency_s: float
    engine_latency_s: float
    lower_bound_ok: bool
    traffic_match: bool
    engine_objectives: Dict[str, float] = field(default_factory=dict)

    @property
    def contract_ok(self) -> bool:
        return self.lower_bound_ok and self.traffic_match

    @property
    def latency_ratio(self) -> float:
        """Proxy tightness: analytic/engine latency (1.0 = exact)."""
        if not self.engine_latency_s:
            return 0.0
        return self.proxy_latency_s / self.engine_latency_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point_id": self.point_id,
            "assignment": self.assignment,
            "proxy_latency_s": self.proxy_latency_s,
            "engine_latency_s": self.engine_latency_s,
            "latency_ratio": self.latency_ratio,
            "lower_bound_ok": self.lower_bound_ok,
            "traffic_match": self.traffic_match,
            "engine_objectives": self.engine_objectives,
        }


@dataclass
class ExplorationReport:
    """Everything one exploration produced, JSON-able for CI artifacts."""

    space: str
    strategy: str
    budget: int
    seed: int
    objectives: Tuple[Objective, ...]
    feasible_points: int
    evaluations: int
    proxy_cache_hits: int
    candidates: int
    frontier: List[FrontierPoint]
    verified: List[VerifiedPoint]
    rank_agreement: Optional[float]
    proxy_wall_s: float
    verify_wall_s: float
    #: which proxy evaluation path produced the candidates ("sweep" fans
    #: per-point scenarios through the executor + cache; "batched" evaluates
    #: whole generations through the kind's batch runner).
    proxy: str = "sweep"
    #: the payload-key -> weight mapping of a weighted exploration (None for
    #: pure non-domination ordering).
    weights: Optional[Dict[str, float]] = None

    @property
    def contract_ok(self) -> bool:
        """True iff every verified point satisfied the lower-bound contract."""
        return all(point.contract_ok for point in self.verified)

    def to_dict(self) -> Dict[str, Any]:
        objectives = [
            {"name": o.name, "key": o.key, "sense": o.sense} for o in self.objectives
        ]
        return {
            "space": self.space,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "proxy": self.proxy,
            "weights": self.weights,
            "objectives": objectives,
            "feasible_points": self.feasible_points,
            "evaluations": self.evaluations,
            "proxy_cache_hits": self.proxy_cache_hits,
            "candidates": self.candidates,
            "frontier": [point.to_dict() for point in self.frontier],
            "verified": [point.to_dict() for point in self.verified],
            "contract_ok": self.contract_ok,
            "rank_agreement": self.rank_agreement,
            "proxy_wall_s": self.proxy_wall_s,
            "verify_wall_s": self.verify_wall_s,
        }


def _objective_vector(
    payload: Mapping[str, Any], objectives: Sequence[Objective]
) -> List[float]:
    return [objective.value(payload) for objective in objectives]


def validate_weights(
    weights: Optional[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> None:
    """Reject weight keys that name no objective (``KeyError``).

    Shared by :func:`run_exploration` and the CLI, so the CLI can classify
    the failure as a user error (exit 2) *before* the exploration runs
    instead of catching exceptions around the whole run.
    """
    if weights is None:
        return
    known = {objective.key for objective in objectives}
    unknown = sorted(set(weights) - known)
    if unknown:
        raise KeyError(f"unknown objective weight key(s) {unknown}; "
                       f"known: {sorted(known)}")


def resolve_batch_runner(space: DesignSpace, proxy: str):
    """Resolve the proxy mode to a batch runner (or ``None`` for sweep mode).

    Raises ``KeyError`` for an unknown proxy name and for a ``batched``
    request on a kind without a registered analytic batch runner -- user
    errors the CLI reports with exit status 2.
    """
    if proxy not in ("sweep", "batched"):
        raise KeyError(f"unknown proxy mode {proxy!r}; known: sweep, batched")
    if proxy != "batched":
        return None
    from ..runner.scenarios import REGISTRY

    batch_runner = REGISTRY.batch_runner(space.kind, "analytic")
    if batch_runner is None:
        raise KeyError(
            f"scenario kind {space.kind!r} has no analytic batch runner; "
            "use the 'sweep' proxy"
        )
    return batch_runner


def _verify_frontier(
    space: DesignSpace,
    targets: Sequence[FrontierPoint],
    proxies: Mapping[str, Candidate],
    objectives: Sequence[Objective],
    executor: Executor,
    cache: Optional[ResultCache],
    force: bool,
) -> List[VerifiedPoint]:
    """Re-evaluate ``targets`` on the engine and check the proxy contract."""
    points = [space.materialize(point.assignment) for point in targets]
    outcomes = run_sweep(
        [point.scenario for point in points],
        executor=executor,
        cache=cache,
        force=force,
        backend="engine",
    )
    verified = []
    for target, outcome in zip(targets, outcomes):
        proxy = proxies[target.point_id].payload
        engine = outcome.result
        engine_latency = engine["latency_s"] * (1.0 + _CONTRACT_RTOL)
        bound_ok = proxy["latency_s"] <= engine_latency
        traffic_ok = (
            proxy["ddr_bytes"] == engine["ddr_bytes"]
            and proxy["lpddr_bytes"] == engine["lpddr_bytes"]
        )
        engine_objectives = {}
        for objective in objectives:
            engine_objectives[objective.name] = objective.value(engine)
        verified.append(
            VerifiedPoint(
                point_id=target.point_id,
                assignment=dict(target.assignment),
                proxy_latency_s=proxy["latency_s"],
                engine_latency_s=engine["latency_s"],
                lower_bound_ok=bound_ok,
                traffic_match=traffic_ok,
                engine_objectives=engine_objectives,
            )
        )
    return verified


def run_exploration(
    space: DesignSpace,
    strategy: SearchStrategy,
    budget: int = 200,
    verify_top: int = 8,
    seed: Optional[int] = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    proxy: str = "sweep",
    weights: Optional[Mapping[str, float]] = None,
    executor: Optional[Executor] = None,
    chunk_size: Optional[Any] = None,
) -> ExplorationReport:
    """Search ``space`` with ``strategy`` and verify the frontier.

    Parameters mirror the sweep front-end where they overlap (``executor``,
    ``cache``, ``force``); ``budget`` bounds the strategy's total analytic
    evaluations and ``verify_top`` bounds the engine re-evaluations (0 skips
    verification entirely -- e.g. for pure proxy benchmarks).

    ``executor`` is the :class:`~repro.runner.executors.Executor` every
    evaluation batch -- the strategy's proxy generations and the engine
    verification pass alike -- fans out through; its lifecycle belongs to
    the caller.  When omitted, ``workers`` picks the classic local policy
    (serial for ``<= 1``, else a process pool), so pre-executor call sites
    behave unchanged.

    ``proxy`` selects how analytic evaluations run.  ``"sweep"`` (default)
    materialises every point into an ad-hoc scenario and fans it through
    :func:`run_sweep` -- worker pool and on-disk cache included.  ``"batched"``
    routes whole strategy generations through the kind's registered batch
    runner (:meth:`~repro.runner.scenarios.ScenarioRegistry.batch_runner`)
    via :func:`~repro.runner.sweep.evaluate_chunked`, which shares tallies
    across points and vectorizes the rooflines -- tens of times faster on
    large generations, with per-point payloads exactly equal to the sweep
    path (so frontiers are identical).  Batched generations shard into
    **chunk jobs** across ``executor`` (``chunk_size`` picks the policy:
    default ``None`` keeps a serial executor on one whole-generation batch
    call and auto-shards on distributed executors), and are cached
    per-chunk in ``cache``, so a warm rerun skips whole chunks -- reported
    through ``proxy_cache_hits`` like sweep-mode scenario hits.

    ``chunk_size`` is one of
    :data:`~repro.runner.sweep.CHUNK_SIZE_POLICIES` (``None`` / ``"auto"``
    / ``"off"``) or an explicit ``int`` points-per-chunk; it only affects
    the batched proxy (sweep mode ships per-scenario jobs regardless).

    ``weights`` (payload key -> non-negative weight, e.g. ``{"latency_s": 2,
    "offchip_bytes": 1}``) turns the report's ordering from pure
    non-domination into the weighted scalarisation of
    :func:`~repro.analysis.pareto.weighted_scalarization`: every frontier
    point carries its pool-relative score, the frontier is sorted best-score
    first, and ``verify_top`` certifies the best-scoring points instead of
    the lowest-latency ones.  (To also *select* halving survivors by weight,
    construct the strategy with the same weights -- the CLI does both.)
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if verify_top < 0:
        raise ValueError(f"verify_top must be >= 0, got {verify_top}")
    validate_weights(weights, objectives)
    _validate_chunk_size(chunk_size)  # fail before any evaluation runs
    batch_runner = resolve_batch_runner(space, proxy)
    if executor is None:
        executor = default_executor(workers)
    if seed is None:
        # Draw an explicit seed and record it in the report: a run seeded
        # from OS entropy must still be replayable by passing the reported
        # seed back in.  (random.Random(None) would seed identically but
        # leave no trace of the effective seed.)
        seed = random.SystemRandom().randrange(2**32)
    rng = random.Random(seed)
    # Streaming count: a 10^6-point space is never materialised just to be
    # sized (strategies that need the indexed list still build it).
    feasible_points = space.feasible_count()
    chunk_align = space.chunk_alignment()
    stats = {"evaluations": 0, "cache_hits": 0}

    def evaluate(
        assignments: Sequence[Mapping[str, Any]], fidelity: float
    ) -> List[Dict[str, Any]]:
        if batch_runner is not None:
            payloads, chunk_hits = evaluate_chunked(
                space.kind,
                [space.point_params(a, fidelity) for a in assignments],
                backend="analytic",
                executor=executor,
                cache=cache,
                force=force,
                chunk_size=chunk_size,
                align=chunk_align,
            )
            stats["evaluations"] += len(payloads)
            stats["cache_hits"] += chunk_hits
            return payloads
        points = [space.materialize(a, fidelity) for a in assignments]
        outcomes = run_sweep(
            [point.scenario for point in points],
            executor=executor,
            cache=cache,
            force=force,
            backend="analytic",
        )
        stats["evaluations"] += len(outcomes)
        stats["cache_hits"] += sum(1 for o in outcomes if o.cached)
        return [dict(outcome.result) for outcome in outcomes]

    proxy_start = time.perf_counter()
    candidates = strategy.search(space, budget, evaluate, rng)
    proxy_wall_s = time.perf_counter() - proxy_start

    # Dedup by design identity (a strategy may legitimately revisit points).
    unique: Dict[str, Candidate] = {}
    for candidate in candidates:
        unique.setdefault(candidate.point_id, candidate)
    pool = list(unique.values())

    senses = [objective.sense for objective in objectives]
    vectors = [_objective_vector(c.payload, objectives) for c in pool]
    # Pool-relative weighted scores (the normalisation cohort is the whole
    # candidate pool, not just the frontier, so scores reflect the search).
    scores: Optional[List[float]] = None
    if weights is not None and pool:
        weight_vector = [weights.get(objective.key, 0.0)
                         for objective in objectives]
        scores = weighted_scalarization(vectors, senses, weight_vector)
    frontier_indices = pareto_frontier(vectors, senses) if pool else []
    frontier = []
    for index in frontier_indices:
        named_values = {}
        for objective, value in zip(objectives, vectors[index]):
            named_values[objective.name] = value
        frontier.append(
            FrontierPoint(
                point_id=pool[index].point_id,
                assignment=dict(pool[index].assignment),
                objectives=named_values,
                weighted_score=scores[index] if scores is not None else None,
            )
        )
    # Best-first: by weighted score when the user gave weights, by latency
    # otherwise -- the verification set and the report read top-down.
    if scores is not None:
        frontier.sort(key=lambda p: (p.weighted_score, p.point_id))
    else:
        frontier.sort(key=lambda p: (p.objectives.get("latency", 0.0),
                                     p.point_id))

    verified: List[VerifiedPoint] = []
    verify_wall_s = 0.0
    if verify_top and frontier:
        verify_start = time.perf_counter()
        verified = _verify_frontier(
            space,
            frontier[:verify_top],
            unique,
            objectives,
            executor,
            cache,
            force,
        )
        verify_wall_s = time.perf_counter() - verify_start

    agreement = None
    if len(verified) >= 2:
        agreement = kendall_tau(
            [point.proxy_latency_s for point in verified],
            [point.engine_latency_s for point in verified],
        )

    return ExplorationReport(
        space=space.name,
        strategy=strategy.name,
        budget=budget,
        seed=seed,
        objectives=tuple(objectives),
        feasible_points=feasible_points,
        evaluations=stats["evaluations"],
        proxy_cache_hits=stats["cache_hits"],
        candidates=len(pool),
        frontier=frontier,
        verified=verified,
        rank_agreement=agreement,
        proxy_wall_s=proxy_wall_s,
        verify_wall_s=verify_wall_s,
        proxy=proxy,
        weights=dict(weights) if weights is not None else None,
    )
