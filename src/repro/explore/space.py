"""Declarative design spaces: parameter axes, constraints, and fidelities.

A :class:`DesignSpace` is the searchable counterpart of a scenario kind: a
set of named :class:`Axis` objects (each a finite list of JSON-able values),
a set of named feasibility :class:`Constraint` predicates, and the scenario
*kind* every point evaluates through.  Points are plain assignments (axis
name -> value), so the whole space machinery composes with the existing
sweep executor and on-disk cache for free: each point materialises into an
ad-hoc :class:`~repro.runner.scenarios.Scenario` whose canonical identity
(and therefore cache key) is exactly its parameter mapping.

Spaces also define a *fidelity* hook: a deterministic transformation that
shrinks a point's workload for cheap early-rung evaluations (successive
halving runs most candidates only at reduced fidelity).  Fidelity is part of
the materialised parameters, so low- and full-fidelity evaluations of the
same design cache under different keys and can never be confused.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..runner.scenarios import Scenario, canonical_json

__all__ = ["Axis", "Constraint", "DesignPoint", "DesignSpace", "scale_seq_len"]


@dataclass(frozen=True)
class Axis:
    """One searchable parameter: a name and its finite, ordered value list."""

    name: str
    values: Tuple[Any, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        seen = set()
        for value in self.values:
            key = canonical_json(value)  # also rejects non-JSON-able values
            if key in seen:
                raise ValueError(f"axis {self.name!r} has duplicate value {value!r}")
            seen.add(key)


@dataclass(frozen=True)
class Constraint:
    """A named feasibility predicate over a full axis assignment."""

    name: str
    predicate: Callable[[Mapping[str, Any]], bool]
    description: str = ""

    def satisfied(self, assignment: Mapping[str, Any]) -> bool:
        return bool(self.predicate(assignment))


@dataclass(frozen=True)
class DesignPoint:
    """One feasible assignment, with its stable identity and scenario."""

    space: str
    point_id: str
    assignment: Mapping[str, Any]
    scenario: Scenario
    fidelity: float = 1.0


def scale_seq_len(params: Dict[str, Any], fraction: float) -> Dict[str, Any]:
    """Default fidelity hook: shrink ``seq_len``, floor 32, multiple of 16.

    Tiling and attention-mapping decisions depend on the sequence length
    only through its magnitude, so a shortened sequence preserves the
    *relative* quality of design points while costing a fraction of the
    evaluation -- which is all successive halving needs from early rungs.
    """
    seq_len = params.get("seq_len")
    if seq_len is not None:
        scaled = max(32, int(round(seq_len * fraction / 16.0)) * 16)
        params["seq_len"] = min(seq_len, scaled)
    return params


#: signature of a fidelity hook: ``(params, fraction) -> params``.
FidelityHook = Callable[[Dict[str, Any], float], Dict[str, Any]]


class DesignSpace:
    """A named, constrained cartesian product of axes over one scenario kind.

    Parameters
    ----------
    name:
        Space name; becomes part of every point's scenario name and tags.
    axes:
        The searchable parameters.  Axis names must be unique and must be
        keyword parameters of the scenario kind's runner functions.
    kind:
        Scenario kind every point evaluates through (must be registered for
        the ``analytic`` backend to search, and for the ``engine`` backend
        to verify).
    base_params:
        Fixed parameters merged under every assignment (the non-searched
        arguments of the kind).
    constraints:
        Feasibility predicates; infeasible assignments are silently skipped
        during enumeration (that is their job), but materialising one
        explicitly raises.
    fidelity_hook:
        ``(params, fraction) -> params`` transformation for reduced-fidelity
        evaluation; defaults to :func:`scale_seq_len`.
    """

    def __init__(
        self,
        name: str,
        axes: Sequence[Axis],
        kind: str,
        base_params: Optional[Mapping[str, Any]] = None,
        constraints: Sequence[Constraint] = (),
        fidelity_hook: FidelityHook = scale_seq_len,
        description: str = "",
    ):
        if not axes:
            raise ValueError(f"design space {name!r} has no axes")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"design space {name!r} has duplicate axis names")
        overlap = set(names) & set(base_params or {})
        if overlap:
            raise ValueError(
                f"axes {sorted(overlap)} shadow base_params in design space {name!r}"
            )
        self.name = name
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self.kind = kind
        self.base_params: Dict[str, Any] = dict(base_params or {})
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self.fidelity_hook = fidelity_hook
        self.description = description
        self._points: Optional[List[Dict[str, Any]]] = None
        self._feasible_count: Optional[int] = None

    # ------------------------------------------------------------ enumeration

    @property
    def cardinality(self) -> int:
        """Size of the unconstrained cartesian product."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def feasible(self, assignment: Mapping[str, Any]) -> bool:
        return all(c.satisfied(assignment) for c in self.constraints)

    def iter_points(self) -> Iterator[Dict[str, Any]]:
        """Yield every feasible assignment in deterministic axis-major order
        -- the streaming counterpart of :meth:`points`.

        Nothing is materialised or memoised: infeasible combinations are
        filtered as the cartesian product is walked, so a 10^6-point space
        costs one assignment dict of memory at a time.  Strategies that can
        consume a stream (grid search) use this; strategies whose seeded
        sampling needs the full indexed list (random, halving) still call
        :meth:`points`.  When the list is already memoised the stream
        replays it (same dicts, same order) rather than re-running the
        constraint predicates.
        """
        if self._points is not None:
            yield from self._points
            return
        names = [axis.name for axis in self.axes]
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            assignment = dict(zip(names, combo))
            if self.feasible(assignment):
                yield assignment

    def feasible_count(self) -> int:
        """How many feasible assignments the space has (memoised).

        Streams :meth:`iter_points` on first call, so counting a huge space
        never materialises it -- and a memoised :meth:`points` list short-
        circuits to its length.
        """
        if self._feasible_count is None:
            if self._points is not None:
                self._feasible_count = len(self._points)
            else:
                self._feasible_count = sum(1 for _ in self.iter_points())
        return self._feasible_count

    def chunk_alignment(self, cap: int = 4096) -> int:
        """The largest trailing-axis block size not exceeding ``cap``: the
        product of the cardinalities of as many *innermost* (fastest-
        iterating) axes as fit.

        Used as the ``align`` hint of
        :func:`repro.runner.sweep.auto_chunk_size`: cutting chunks on a
        multiple of this block means points inside one chunk share every
        leading-axis value as much as enumeration order allows, so batch
        evaluators see maximal repeated structure (e.g. the chiplet link
        axes iterate innermost over a fixed core design).  Constraints may
        thin individual blocks, so this is a heuristic alignment, never a
        correctness requirement.
        """
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        block = 1
        for axis in reversed(self.axes):
            grown = block * len(axis.values)
            if grown > cap:
                break
            block = grown
        return block

    def points(self) -> List[Dict[str, Any]]:
        """Every feasible assignment, in deterministic axis-major order.

        The enumeration is memoised (axes and constraints are immutable
        after construction, and constraint predicates may be expensive);
        callers get a fresh list each time but share the assignment dicts,
        which nothing in the explorer mutates.  Prefer :meth:`iter_points`
        /:meth:`feasible_count` where a stream or a count suffices -- this
        list is what makes 10^6-point spaces expensive to hold.
        """
        if self._points is None:
            self._points = list(self.iter_points())
            self._feasible_count = len(self._points)
        return list(self._points)

    # --------------------------------------------------------- materialising

    def point_id(self, assignment: Mapping[str, Any]) -> str:
        """Stable short identity of one assignment (fidelity-independent)."""
        identity = canonical_json(
            {"space": self.name, "kind": self.kind, "assignment": dict(assignment)}
        )
        return hashlib.sha256(identity.encode()).hexdigest()[:10]

    def point_params(
        self, assignment: Mapping[str, Any], fidelity: float = 1.0
    ) -> Dict[str, Any]:
        """Resolve one assignment into the runner parameter mapping.

        ``base_params`` overlaid with the assignment, passed through the
        fidelity hook when ``fidelity < 1`` -- exactly the parameters a
        materialised scenario would carry, without building the scenario.
        This is the entry point of the batched proxy path: bulk evaluators
        feed these mappings straight to a registered batch runner.
        Infeasible assignments and unknown axis names raise ``ValueError``.
        """
        known = {axis.name for axis in self.axes}
        unknown = sorted(set(assignment) - known)
        if unknown:
            raise ValueError(
                f"unknown axis name(s) {unknown} for design space "
                f"{self.name!r}; axes: {sorted(known)}"
            )
        if not 0.0 < fidelity <= 1.0:
            raise ValueError(f"fidelity must be in (0, 1], got {fidelity}")
        if not self.feasible(assignment):
            failed = [c.name for c in self.constraints if not c.satisfied(assignment)]
            raise ValueError(
                f"assignment violates constraint(s) {failed} of design "
                f"space {self.name!r}"
            )
        params = dict(self.base_params)
        params.update(assignment)
        if fidelity < 1.0:
            params = self.fidelity_hook(params, fidelity)
        return params

    def materialize(
        self, assignment: Mapping[str, Any], fidelity: float = 1.0
    ) -> DesignPoint:
        """Turn one assignment into a cacheable :class:`DesignPoint`.

        The scenario's parameters are :meth:`point_params`; the scenario name
        embeds the fidelity-independent :meth:`point_id` (suffixed with the
        fidelity when reduced) so cache entries can never be confused.
        """
        params = self.point_params(assignment, fidelity)
        name = f"dse/{self.name}/{self.point_id(assignment)}"
        if fidelity < 1.0:
            name = f"{name}@f{fidelity:g}"
        scenario = Scenario(
            name=name,
            kind=self.kind,
            params=params,
            tags=("dse", self.name),
            description=f"DSE point of space {self.name!r}",
        )
        return DesignPoint(
            space=self.name,
            point_id=self.point_id(assignment),
            assignment=dict(assignment),
            scenario=scenario,
            fidelity=fidelity,
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary (used by ``explore --list``)."""
        lines = [
            f"{self.name}: {self.description or self.kind} "
            f"({self.cardinality} raw points, kind {self.kind!r})"
        ]
        for axis in self.axes:
            values = ", ".join(str(v) for v in axis.values)
            lines.append(f"  axis {axis.name}: {values}")
        for constraint in self.constraints:
            detail = constraint.description or "predicate"
            lines.append(f"  constraint {constraint.name}: {detail}")
        return "\n".join(lines)
