"""Search strategies over a :class:`~repro.explore.space.DesignSpace`.

A strategy decides *which* points to evaluate and at *what* fidelity; the
explorer (:mod:`repro.explore.explore`) decides *how* -- batching every
request through the sweep front-end's pluggable execution executor (serial,
local process pool, or the distributed work queue of
:mod:`repro.runner.executors`) and result cache.  The contract is the
:meth:`SearchStrategy.search` method: given the space, an
evaluation budget, and a batch-evaluation callback, return the candidates
that were evaluated at **full fidelity** (only those are comparable on the
Pareto axes; reduced-fidelity rung results are selection scaffolding).

All strategies are deterministic under a fixed seed: they draw randomness
only from the ``random.Random`` instance the explorer hands them, and they
iterate the space in its canonical enumeration order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.pareto import pareto_ranks, weighted_scalarization
from .space import DesignSpace

__all__ = [
    "Candidate",
    "EvaluateFn",
    "GridSearch",
    "RandomSearch",
    "STRATEGIES",
    "SearchStrategy",
    "SuccessiveHalving",
    "get_strategy",
    "strategy_names",
]


@dataclass(frozen=True)
class Candidate:
    """One full-fidelity evaluated design point."""

    point_id: str
    assignment: Mapping[str, Any]
    payload: Mapping[str, Any]


#: ``evaluate(assignments, fidelity) -> payloads`` -- provided by the
#: explorer; one payload dict per assignment, in order.
EvaluateFn = Callable[[Sequence[Mapping[str, Any]], float], List[Dict[str, Any]]]


class SearchStrategy:
    """Base class; concrete strategies implement :meth:`search`."""

    name = "abstract"

    def search(
        self,
        space: DesignSpace,
        budget: int,
        evaluate: EvaluateFn,
        rng: random.Random,
    ) -> List[Candidate]:
        raise NotImplementedError

    @staticmethod
    def _candidates(
        space: DesignSpace,
        assignments: Sequence[Mapping[str, Any]],
        payloads: Sequence[Dict[str, Any]],
    ) -> List[Candidate]:
        return [
            Candidate(
                point_id=space.point_id(assignment),
                assignment=dict(assignment),
                payload=payload,
            )
            for assignment, payload in zip(assignments, payloads)
        ]


class GridSearch(SearchStrategy):
    """Deterministic coverage of the feasible grid.

    When the budget is smaller than the feasible set, points are taken at an
    even stride across the canonical enumeration order, so every axis region
    still contributes candidates (a plain prefix would exhaust the budget
    inside the first corner of the space).

    Selection is fully deterministic, so the feasible set is consumed as a
    *stream* (:meth:`~repro.explore.space.DesignSpace.iter_points`): the
    strided indices are computed from the feasible count and picked off the
    generator, and a 10^6-point space never materialises as a list.  The
    seeded-sampling strategies (random, halving) still need the indexed
    list -- ``rng.sample`` over a stream would change their draws.
    """

    name = "grid"

    def search(
        self,
        space: DesignSpace,
        budget: int,
        evaluate: EvaluateFn,
        rng: random.Random,
    ) -> List[Candidate]:
        total = space.feasible_count()
        if budget < total:
            # Identical selection to the old list-index path:
            # ``points[int(i * stride)]`` for i in range(budget), with the
            # wanted indices strictly increasing (stride > 1), picked off
            # the stream in one pass.
            stride = total / budget
            wanted = {int(i * stride) for i in range(budget)}
            points = [
                point
                for index, point in enumerate(space.iter_points())
                if index in wanted
            ]
        else:
            points = list(space.iter_points())
        payloads = evaluate(points, 1.0)
        return self._candidates(space, points, payloads)


class RandomSearch(SearchStrategy):
    """Uniform sampling without replacement from the feasible set."""

    name = "random"

    def search(
        self,
        space: DesignSpace,
        budget: int,
        evaluate: EvaluateFn,
        rng: random.Random,
    ) -> List[Candidate]:
        points = space.points()
        if budget < len(points):
            points = rng.sample(points, budget)
        payloads = evaluate(points, 1.0)
        return self._candidates(space, points, payloads)


#: the canonical DSE objective axes, as (payload key, sense) pairs.  This is
#: the single source of truth: halving selects survivors on these, and
#: :data:`repro.explore.explore.DEFAULT_OBJECTIVES` derives its frontier
#: axes from the same tuple.
DEFAULT_HALVING_OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("latency_s", "min"),
    ("offchip_bytes", "min"),
    ("utilization", "max"),
)


class SuccessiveHalving(SearchStrategy):
    """Multi-fidelity successive halving on Pareto rank.

    Rung 0 evaluates a large random cohort at a cheap reduced fidelity (the
    space's fidelity hook, e.g. a shortened sequence); each subsequent rung
    keeps the best ``1/eta`` of the cohort -- ordered by non-domination rank
    over the DSE objectives, ties broken deterministically by point id --
    and re-evaluates the survivors at ``eta`` times the fidelity, until the
    final rung runs at full fidelity.  The returned candidates are exactly
    the final rung's survivors.

    ``budget`` bounds the *total* number of evaluations across all rungs
    (cache hits included), which is the fair comparison against grid/random
    search: with the same budget, halving spends most of it cheaply and
    funnels full-fidelity effort onto promising designs.
    """

    name = "halving"

    def __init__(
        self,
        eta: int = 2,
        objectives: Sequence[Tuple[str, str]] = DEFAULT_HALVING_OBJECTIVES,
        min_fidelity: float = 0.25,
        min_final: int = 4,
        weights: Optional[Mapping[str, float]] = None,
    ):
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if not 0.0 < min_fidelity <= 1.0:
            raise ValueError(f"min_fidelity must be in (0, 1], got {min_fidelity}")
        if min_final < 1:
            raise ValueError(f"min_final must be >= 1, got {min_final}")
        self.eta = eta
        self.objectives = tuple(objectives)
        self.min_fidelity = min_fidelity
        #: halving stops once the cohort reaches this size: a classic SHA
        #: would converge to a single winner, but the explorer wants a small
        #: *frontier-comparable* pool at full fidelity, not one point.
        self.min_final = min_final
        #: optional payload-key -> weight mapping; when set, survivor
        #: selection uses the weighted scalarisation of
        #: :func:`repro.analysis.pareto.weighted_scalarization` instead of
        #: non-domination rank.  Keys must be objective payload keys; unknown
        #: keys fail loudly (a typo'd weight must not silently become rank
        #: selection).
        if weights:
            known = {key for key, _sense in self.objectives}
            unknown = sorted(set(weights) - known)
            if unknown:
                raise ValueError(f"unknown objective weight key(s) {unknown}; "
                                 f"known: {sorted(known)}")
        self.weights = dict(weights) if weights else None

    # ------------------------------------------------------------- planning

    def plan(self, feasible: int, budget: int) -> List[int]:
        """Cohort size per rung: geometric decay, total <= budget.

        The initial cohort is the largest ``n0 <= feasible`` whose halving
        series fits the budget; the series ends once the cohort reaches
        ``min_final`` (the full-fidelity survivor pool).
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        n0 = min(feasible, budget)
        while n0 > 1:
            sizes = self._series(n0)
            if sum(sizes) <= budget:
                return sizes
            n0 -= 1
        return [1]

    def _series(self, n0: int) -> List[int]:
        sizes = [n0]
        while sizes[-1] > self.min_final:
            sizes.append(max(self.min_final, sizes[-1] // self.eta))
        return sizes

    def _fidelity(self, rung: int, rungs: int) -> float:
        """Fidelity ladder: final rung 1.0, each earlier rung /eta, floored."""
        fidelity = 1.0 / (self.eta ** (rungs - 1 - rung))
        return max(self.min_fidelity, fidelity)

    def _rank(self, payloads: Sequence[Mapping[str, Any]]) -> Sequence[float]:
        """Selection score per payload; lower is better.

        Non-domination rank by default; the weighted scalarisation when
        :attr:`weights` is set (both orders are consumed identically by the
        deterministic ``(score, point_id)`` survivor sort).
        """
        vectors = []
        for payload in payloads:
            vector = []
            for key, _sense in self.objectives:
                if key not in payload:
                    raise KeyError(
                        f"successive halving objective {key!r} missing "
                        f"from payload {sorted(payload)}"
                    )
                vector.append(payload[key])
            vectors.append(vector)
        senses = [sense for _key, sense in self.objectives]
        if self.weights is not None:
            weight_vector = [self.weights.get(key, 0.0)
                             for key, _sense in self.objectives]
            return weighted_scalarization(vectors, senses, weight_vector)
        return pareto_ranks(vectors, senses)

    # -------------------------------------------------------------- search

    def search(
        self,
        space: DesignSpace,
        budget: int,
        evaluate: EvaluateFn,
        rng: random.Random,
    ) -> List[Candidate]:
        points = space.points()
        sizes = self.plan(len(points), budget)
        if sizes[0] < len(points):
            cohort = rng.sample(points, sizes[0])
        else:
            cohort = list(points)
        rungs = len(sizes)
        payloads: List[Dict[str, Any]] = []
        for rung, size in enumerate(sizes):
            cohort = cohort[:size]
            fidelity = self._fidelity(rung, rungs)
            payloads = evaluate(cohort, fidelity)
            if rung == rungs - 1:
                break
            ranks = self._rank(payloads)
            order = sorted(
                range(len(cohort)),
                key=lambda i: (ranks[i], space.point_id(cohort[i])),
            )
            cohort = [cohort[i] for i in order]
        return self._candidates(space, cohort, payloads)


#: registry of CLI-selectable strategies (name -> factory).
STRATEGIES = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    SuccessiveHalving.name: SuccessiveHalving,
}


def strategy_names() -> List[str]:
    return sorted(STRATEGIES)


def get_strategy(
    name: str,
    weights: Optional[Mapping[str, float]] = None,
    objectives: Optional[Sequence[Tuple[str, str]]] = None,
) -> SearchStrategy:
    """Construct a strategy by name.

    ``weights`` (payload key -> weight) configures weighted-scalarisation
    survivor selection on strategies that rank cohorts -- currently only
    successive halving; grid and random evaluate every candidate regardless
    of score, so weights are ignored for them (the explorer still applies
    them to the frontier ordering).  ``objectives`` overrides halving's
    ``(payload key, sense)`` selection axes -- the explorer passes the
    space's axes here so e.g. a chiplet exploration ranks cohorts on the
    same throughput/cost axes its frontier uses (and so weights naming
    those axes validate instead of being rejected).
    """
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown search strategy {name!r}; known: {strategy_names()}"
        ) from None
    if factory is SuccessiveHalving and (weights or objectives is not None):
        kwargs: Dict[str, Any] = {}
        if objectives is not None:
            kwargs["objectives"] = tuple(objectives)
        if weights:
            kwargs["weights"] = weights
        return SuccessiveHalving(**kwargs)
    return factory()
