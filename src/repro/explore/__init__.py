"""Design-space exploration (DSE) over the RSN-XNN reproduction.

The paper's evaluation reports fixed points in a huge hardware/mapping
design space -- tiling choices, attention mappings, off-chip bandwidth,
scratchpad depth, MME count.  This package *searches* that space:

* :mod:`repro.explore.space` -- declarative spaces (axes + constraints +
  fidelities) whose points materialise into cacheable scenarios;
* :mod:`repro.explore.spaces` -- the named space catalogue;
* :mod:`repro.explore.strategies` -- exhaustive grid, random sampling, and
  multi-fidelity successive halving;
* :mod:`repro.explore.explore` -- the two-phase driver: search on the
  analytic fast-model proxy (through the sweep pool + cache), then certify
  the Pareto frontier on the cycle-level engine and report proxy-vs-verified
  rank agreement.

CLI: ``python -m repro.runner explore --strategy halving --budget 200``.
"""

from .explore import (
    COST_OBJECTIVES,
    DEFAULT_OBJECTIVES,
    PIPELINE_THROUGHPUT_OBJECTIVE,
    ExplorationReport,
    FrontierPoint,
    Objective,
    VerifiedPoint,
    objectives_for,
    resolve_batch_runner,
    run_exploration,
    validate_weights,
)
from .space import Axis, Constraint, DesignPoint, DesignSpace
from .spaces import SPACES, get_space, space_names
from .strategies import (
    STRATEGIES,
    Candidate,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    get_strategy,
    strategy_names,
)

__all__ = [
    "Axis",
    "COST_OBJECTIVES",
    "Candidate",
    "Constraint",
    "DEFAULT_OBJECTIVES",
    "DesignPoint",
    "DesignSpace",
    "ExplorationReport",
    "FrontierPoint",
    "GridSearch",
    "Objective",
    "PIPELINE_THROUGHPUT_OBJECTIVE",
    "RandomSearch",
    "SPACES",
    "STRATEGIES",
    "SearchStrategy",
    "SuccessiveHalving",
    "VerifiedPoint",
    "get_space",
    "get_strategy",
    "objectives_for",
    "resolve_batch_runner",
    "run_exploration",
    "space_names",
    "strategy_names",
    "validate_weights",
]
