"""Paths: triggering a computation through the FU network.

"Programming a computation corresponds to triggering a circuit path in the
network, with data sourced from input ports, streamed through FUs, and then
sunk back to output ports" (Section 1).  A :class:`Path` collects, per FU,
the uOP sequence that makes the FU participate in one computation.  Paths can
be checked for conflicts (two paths using the same FU at the same time must be
merged, not triggered independently) and composed into a :class:`PathProgram`
that is loaded into the datapath before simulation.

This module deliberately stays at the control-plane level: a path never
carries data, it only decides which kernels each FU will run and in what
order, which is exactly the separation of control from data that the paper
relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from .exceptions import ConfigurationError
from .network import Datapath
from .uop import ExitUOp, UOp

__all__ = ["Path", "PathProgram"]


class Path:
    """The uOP assignments that realise one computation on the network.

    Parameters
    ----------
    name:
        Label used in error messages and traces (``"attention-mm1"``).
    assignments:
        Optional initial mapping of FU name to uOP sequence.
    """

    def __init__(
        self, name: str, assignments: Optional[Mapping[str, Sequence[UOp]]] = None
    ):
        self.name = name
        self._assignments: "OrderedDict[str, List[UOp]]" = OrderedDict()
        for fu_name, uops in (assignments or {}).items():
            self.assign(fu_name, uops)

    # ------------------------------------------------------------- building

    def assign(self, fu_name: str, uops: Iterable[UOp], append: bool = True) -> "Path":
        """Add uOPs for ``fu_name``; returns ``self`` for chaining."""
        uops = list(uops)
        if fu_name in self._assignments and append:
            self._assignments[fu_name].extend(uops)
        else:
            self._assignments[fu_name] = uops
        return self

    def fu_names(self) -> List[str]:
        return list(self._assignments)

    def uops_for(self, fu_name: str) -> List[UOp]:
        return list(self._assignments.get(fu_name, []))

    @property
    def total_uops(self) -> int:
        return sum(len(uops) for uops in self._assignments.values())

    def uop_bytes(self) -> int:
        """Total encoded size of all uOPs on the path (Fig. 9 accounting)."""
        return sum(u.nbytes for uops in self._assignments.values() for u in uops)

    # ------------------------------------------------------------ composition

    def conflicts_with(self, other: "Path") -> Set[str]:
        """FUs used by both paths.

        Two *independent* paths triggered simultaneously must not share FUs
        (Section 3.1); a non-empty result means the paths must be chained or
        merged instead.
        """
        return set(self._assignments) & set(other._assignments)

    def merged(self, other: "Path", name: Optional[str] = None) -> "Path":
        """Concatenate another path's uOPs after this one's, FU by FU."""
        merged = Path(name or f"{self.name}+{other.name}")
        for fu_name, uops in self._assignments.items():
            merged.assign(fu_name, uops)
        for fu_name, uops in other._assignments.items():
            merged.assign(fu_name, uops)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Path({self.name!r}, fus={len(self._assignments)}, uops={self.total_uops})"
        )


class PathProgram:
    """An ordered collection of paths forming one complete program.

    Paths added with ``parallel=True`` are validated to be FU-disjoint with
    every other parallel path in the same group (spatial parallelism); paths
    added sequentially simply append their uOPs after the existing ones
    (temporal reuse of the same FUs, i.e. the dynamic reconfiguration the
    paper calls "partial path reprogramming").
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self.paths: List[Path] = []
        self._parallel_groups: List[List[Path]] = []

    def add(self, path: Path) -> "PathProgram":
        """Append a path to run after everything already in the program."""
        self.paths.append(path)
        self._parallel_groups.append([path])
        return self

    def add_parallel(self, paths: Sequence[Path]) -> "PathProgram":
        """Append a group of FU-disjoint paths that are triggered together."""
        paths = list(paths)
        for i, first in enumerate(paths):
            for second in paths[i + 1:]:
                shared = first.conflicts_with(second)
                if shared:
                    raise ConfigurationError(
                        f"parallel paths {first.name!r} and {second.name!r} share FUs "
                        f"{sorted(shared)}; merge or chain them instead"
                    )
        self.paths.extend(paths)
        self._parallel_groups.append(paths)
        return self

    # -------------------------------------------------------------- lowering

    def per_fu_uops(self) -> Dict[str, List[UOp]]:
        """Flatten the program to one uOP sequence per FU, in program order."""
        flat: Dict[str, List[UOp]] = OrderedDict()
        for group in self._parallel_groups:
            for path in group:
                for fu_name in path.fu_names():
                    flat.setdefault(fu_name, []).extend(path.uops_for(fu_name))
        return flat

    def load_into(self, datapath: Datapath, terminate: bool = True) -> None:
        """Pre-store the program into the datapath's FUs as local uOP programs.

        ``terminate`` appends an :class:`ExitUOp` to every participating FU so
        the simulation ends when the program does.
        """
        per_fu = self.per_fu_uops()
        for fu_name, uops in per_fu.items():
            fu = datapath.fu(fu_name)
            program = list(uops)
            if terminate:
                program.append(ExitUOp())
            fu.load_program(program)
        if terminate:
            # FUs that are present in the datapath but unused by this program
            # still need to terminate, otherwise the simulation never ends.
            for name, fu in datapath.fus.items():
                if name not in per_fu and fu.uop_channel is None:
                    fu.load_program([ExitUOp()])

    @property
    def total_uops(self) -> int:
        return sum(path.total_uops for path in self.paths)

    def uop_bytes(self) -> int:
        return sum(path.uop_bytes() for path in self.paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathProgram({self.name!r}, paths={len(self.paths)}, "
            f"uops={self.total_uops})"
        )
