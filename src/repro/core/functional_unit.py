"""The functional-unit (FU) abstraction.

An FU in RSN "comprises a micro-operation (uOP) decoder, input and output
ports, and customized modules designed to transform and hold states"
(Section 3.1, Fig. 4).  In this library an FU is a Python object that

* owns a set of named :class:`~repro.core.stream.Port` objects (the data
  plane),
* receives a sequence of :class:`~repro.core.uop.UOp` objects (the control
  plane), either pre-stored locally or streamed in from the instruction
  decoder, and
* implements :meth:`FunctionalUnit.kernel` -- a generator launched once per
  uOP -- which is where the FU's state transformation lives.

Each FU executes only one kernel at a time; once a kernel completes, the FU
fetches the next uOP and stalls if none is available, exactly matching the
execution model of Section 3.1.  State holders (ping-pong buffers, flags,
partial sums) are ordinary instance attributes preserved across kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional

from .exceptions import ConfigurationError
from .kernel import Delay, Read, Write
from .stream import Port, StreamChannel
from .uop import ExitUOp, UOp

__all__ = ["FunctionalUnit", "FUStats", "PassthroughFU"]


@dataclass
class FUStats:
    """Per-FU execution statistics maintained across a simulation run."""

    kernels_executed: int = 0
    uops_consumed: int = 0
    compute_seconds: float = 0.0
    flops: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0

    def reset(self) -> None:
        self.kernels_executed = 0
        self.uops_consumed = 0
        self.compute_seconds = 0.0
        self.flops = 0.0
        self.bytes_in = 0
        self.bytes_out = 0


class FunctionalUnit:
    """Base class for all stateful functional units in an RSN datapath.

    Parameters
    ----------
    name:
        Unique FU name within a datapath (``"MME0"``, ``"MemA1"``, ...).
    fu_type:
        The FU type used as the uOP opcode and by the instruction decoder to
        group FUs (``"MME"``, ``"DDR"``, ...).  Defaults to the class name.
    compute_throughput:
        Sustained arithmetic throughput in FLOP/s used by
        :meth:`compute_time`; ``None`` for FUs that do no arithmetic.
    """

    def __init__(
        self,
        name: str,
        fu_type: Optional[str] = None,
        compute_throughput: Optional[float] = None,
    ):
        self.name = name
        self.fu_type = fu_type or type(self).__name__
        self.compute_throughput = compute_throughput
        self.ports: Dict[str, Port] = {}
        #: interned, reusable ``Read`` requests per port (see read_request()).
        self._read_requests: Dict[str, Read] = {}
        self.stats = FUStats()
        #: locally pre-stored uOP program (used when no uOP channel is bound).
        self._local_program: List[UOp] = []
        #: optional uOP channel filled by the instruction decoder.
        self.uop_channel: Optional[StreamChannel] = None
        #: set once the run loop consumes an :class:`ExitUOp`.
        self.exited = False

    # ------------------------------------------------------------------ ports

    def add_port(self, name: str, direction: str) -> Port:
        """Declare a named input or output port on this FU."""
        if name in self.ports:
            raise ConfigurationError(
                f"FU {self.name!r} already has a port named {name!r}"
            )
        port = Port(name, direction, owner=self)
        self.ports[name] = port
        return port

    def add_input(self, name: str) -> Port:
        return self.add_port(name, Port.INPUT)

    def add_output(self, name: str) -> Port:
        return self.add_port(name, Port.OUTPUT)

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise ConfigurationError(
                f"FU {self.name!r} has no port {name!r}; ports are {sorted(self.ports)}"
            ) from None

    def read_request(self, name: str) -> Read:
        """A reusable :class:`Read` request for the named port.

        Request objects are immutable, so kernels that read the same port on
        every iteration can yield one interned instance instead of allocating
        a fresh dataclass per read -- a measurable share of event cost on
        uOP-dense simulations.
        """
        try:
            return self._read_requests[name]
        except KeyError:
            request = Read(self.port(name))
            self._read_requests[name] = request
            return request

    def input_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == Port.INPUT]

    def output_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == Port.OUTPUT]

    # ---------------------------------------------------------------- control

    def load_program(self, uops: Iterable[UOp], append: bool = False) -> None:
        """Pre-store a uOP sequence locally (AIE-style local instruction memory).

        When a uOP channel is bound (decoder-driven execution) the local
        program is ignored.
        """
        uops = list(uops)
        if append:
            self._local_program.extend(uops)
        else:
            self._local_program = uops

    def attach_uop_channel(self, channel: StreamChannel) -> None:
        """Bind the channel on which the instruction decoder delivers uOPs."""
        if self.uop_channel is not None:
            raise ConfigurationError(f"FU {self.name!r} already has a uOP channel")
        self.uop_channel = channel

    @property
    def program_length(self) -> int:
        return len(self._local_program)

    # ----------------------------------------------------------------- timing

    def compute_time(self, flops: float) -> float:
        """Seconds needed to perform ``flops`` floating-point operations."""
        if not flops:
            return 0.0
        if not self.compute_throughput:
            raise ConfigurationError(
                f"FU {self.name!r} has no compute throughput configured"
            )
        return flops / self.compute_throughput

    def charge_compute(self, flops: float) -> Delay:
        """Account for ``flops`` of arithmetic and return the matching delay."""
        seconds = self.compute_time(flops)
        self.stats.flops += flops
        self.stats.compute_seconds += seconds
        return Delay(seconds)

    # ------------------------------------------------------------- run loop

    def kernel(self, uop: UOp) -> Generator[Any, Any, Any]:
        """Execute one kernel launch directed by ``uop``.

        Subclasses override this generator.  The default implementation raises
        so that forgetting to implement it fails loudly.
        """
        raise NotImplementedError(
            f"FU type {type(self).__name__!r} does not implement kernel()"
        )
        yield  # pragma: no cover - makes this a generator for type checkers

    def run(self) -> Generator[Any, Any, None]:
        """The FU's top-level process: fetch a uOP, run its kernel, repeat.

        Execution ends when an :class:`ExitUOp` is consumed or, for locally
        programmed FUs, when the local program is exhausted.
        """
        if self.uop_channel is not None:
            fetch = Read(self.uop_channel)  # interned: one request, many yields
            while True:
                uop = yield fetch
                self.stats.uops_consumed += 1
                if isinstance(uop, ExitUOp) or uop.opcode == "EXIT":
                    break
                self.stats.kernels_executed += 1
                yield from self.kernel(uop)
        else:
            for uop in self._local_program:
                self.stats.uops_consumed += 1
                if isinstance(uop, ExitUOp) or uop.opcode == "EXIT":
                    break
                self.stats.kernels_executed += 1
                yield from self.kernel(uop)
        self.exited = True

    # ------------------------------------------------------------- utilities

    def describe(self) -> Dict[str, Any]:
        """Structured description used by Fig. 16-style property reports."""
        return {
            "name": self.name,
            "type": self.fu_type,
            "compute_throughput": self.compute_throughput,
            "inputs": [p.name for p in self.input_ports()],
            "outputs": [p.name for p in self.output_ports()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class PassthroughFU(FunctionalUnit):
    """A minimal FU that forwards messages from one input to one output.

    Useful in tests and in the simple-overlay example of Fig. 6, and as a
    template for writing new FUs.  Its uOP control plane is ``(count,)``: the
    number of messages to forward in one kernel launch.
    """

    def __init__(self, name: str, transform=None, **kwargs):
        super().__init__(name, **kwargs)
        self.add_input("in")
        self.add_output("out")
        self._transform = transform

    def kernel(self, uop: UOp) -> Generator[Any, Any, None]:
        count = int(uop.get("count", 1))
        for _ in range(count):
            message = yield self.read_request("in")
            if self._transform is not None and hasattr(message, "map"):
                message = message.map(self._transform)
            yield Write(self.port("out"), message)
