"""Messages that travel on RSN stream channels.

Streams in the RSN abstraction carry "a continuous sequence of data from one
source FU to another destination FU" (Section 3.1).  The simulator does not
model individual words; instead a message represents one logically contiguous
burst (typically a tile of a matrix) together with its size in bytes, so the
timing model can charge ``bytes / bandwidth`` for the transfer while the
functional model can carry the actual NumPy payload for end-to-end numerical
validation.

Two modes are supported:

* ``carry_data=True`` -- :class:`TileMessage` holds a real ``numpy.ndarray``;
  the simulated datapath produces bit-identical results to the NumPy reference
  models in :mod:`repro.workloads.reference`.
* ``carry_data=False`` -- the payload is ``None`` and only the shape/dtype
  metadata is kept, which makes long timing-only runs (full BERT-Large
  encoders) cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

import numpy as np

__all__ = ["StreamMessage", "TileMessage", "ControlToken", "dtype_size"]


_DTYPE_SIZES = {
    "fp32": 4,
    "float32": 4,
    "fp16": 2,
    "float16": 2,
    "int8": 1,
    "int16": 2,
    "int32": 4,
}


def dtype_size(dtype: str) -> int:
    """Return the size in bytes of one element of ``dtype``.

    Accepts both the short names used throughout the paper (``fp32``, ``int8``)
    and NumPy dtype names.
    """
    key = str(dtype).lower()
    if key not in _DTYPE_SIZES:
        raise ValueError(f"unknown dtype {dtype!r}; known: {sorted(_DTYPE_SIZES)}")
    return _DTYPE_SIZES[key]


@dataclass
class StreamMessage:
    """Base class for anything sent over a stream channel.

    Attributes
    ----------
    nbytes:
        Size of the message on the wire, used for bandwidth accounting.
    tag:
        Free-form label used by tests and traces to follow a message through
        the network (e.g. ``"lhs[2,3]"``).
    """

    nbytes: int = 0
    tag: str = ""


@dataclass
class ControlToken(StreamMessage):
    """A zero-data synchronisation token.

    Used where one FU must wait for another without transferring a tile, for
    example to signal that a ping-pong buffer has flipped.
    """

    kind: str = "token"


@dataclass
class TileMessage(StreamMessage):
    """A tile of a matrix streamed between two FUs.

    Parameters
    ----------
    shape:
        Logical shape of the tile (rows, cols).
    dtype:
        Element type, e.g. ``"fp32"``.
    data:
        Optional NumPy payload.  ``None`` in timing-only runs.
    coords:
        Optional (block-row, block-col, k-step) coordinates of the tile within
        its parent matrix, used for debugging and result assembly.
    """

    shape: Tuple[int, ...] = (0, 0)
    dtype: str = "fp32"
    data: Optional[np.ndarray] = None
    coords: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.data is not None:
            self.data = np.asarray(self.data)
            self.shape = tuple(self.data.shape)
        if not self.nbytes:
            self.nbytes = self.element_count * dtype_size(self.dtype)

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count

    @property
    def carries_data(self) -> bool:
        return self.data is not None

    @classmethod
    def from_array(
        cls,
        data: np.ndarray,
        dtype: str = "fp32",
        tag: str = "",
        coords: Tuple[int, ...] = (),
    ) -> "TileMessage":
        """Build a data-carrying tile message from a NumPy array."""
        return cls(data=np.asarray(data), dtype=dtype, tag=tag, coords=coords)

    @classmethod
    def placeholder(
        cls,
        shape: Tuple[int, ...],
        dtype: str = "fp32",
        tag: str = "",
        coords: Tuple[int, ...] = (),
    ) -> "TileMessage":
        """Build a metadata-only tile message (timing-only mode)."""
        return cls(
            shape=tuple(int(s) for s in shape), dtype=dtype, tag=tag, coords=coords
        )

    def map(self, fn: Any, tag: str | None = None) -> "TileMessage":
        """Apply ``fn`` to the payload (if any) and return a new message.

        The shape of the result is taken from the transformed payload when data
        is carried, otherwise the original shape is preserved.  This keeps
        functional and timing-only runs structurally identical.
        """
        new_tag = self.tag if tag is None else tag
        if self.data is not None:
            return TileMessage.from_array(
                fn(self.data), dtype=self.dtype, tag=new_tag, coords=self.coords
            )
        return TileMessage.placeholder(
            self.shape, dtype=self.dtype, tag=new_tag, coords=self.coords
        )
