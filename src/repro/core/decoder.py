"""The three-level instruction decoder hierarchy.

Section 3.3 merges all per-FU uOP streams into a single RSN instruction
stream and recovers them through three levels of decoding:

* the **top-level decoder** fetches instruction packets in program order and
  forwards each packet's window of mOPs to the second-level decoder selected
  by the packet's opcode (FU type) and mask;
* a **second-level decoder** (one per FU type) buffers the window, replays it
  ``reuse`` times, and forwards the resulting uOPs;
* a **third-level decoder** (one per FU) translates uOPs into kernel control
  and hands them to its FU.

All inter-decoder links are finite FIFOs; a full downstream FIFO back-pressures
the decoder above it, and the fetch unit stalls when the decoder it needs is
busy.  This is the mechanism behind the deadlock discussion in the paper: if
the fetch unit stalls before it has issued the instruction that tells the
*consumer* FU to drain the producer's stream, the system wedges.  The paper
reports that FIFO depth 6 between the uOP and mOP decoders is deadlock-free in
their implementation; :data:`DEFAULT_FIFO_DEPTH` reflects that and the
regression tests exercise both the deadlock and the deadlock-free depths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from .exceptions import ConfigurationError
from .instruction import RSNProgram
from .kernel import Delay, Read, Write
from .network import Datapath
from .stream import StreamChannel
from .uop import ExitUOp

__all__ = ["DecoderConfig", "InstructionDecoder", "DEFAULT_FIFO_DEPTH"]


#: FIFO depth between the mOP and uOP decoders that the paper reports as
#: deadlock-free for RSN-XNN.
DEFAULT_FIFO_DEPTH = 6


@dataclass(frozen=True)
class DecoderConfig:
    """Timing and sizing parameters of the decoder pipeline.

    Parameters
    ----------
    fifo_depth:
        Capacity of the FIFOs between decoding levels and of each FU's uOP
        queue.
    fetch_seconds:
        Time the top-level decoder spends fetching and routing one packet.
        The paper deliberately slows the decoder down (multi-cycle decode,
        larger loop initiation interval) because its throughput demand is tiny
        (1.4 MB/s); the default models a handful of 260 MHz cycles per packet.
    mop_decode_seconds:
        Time a second-level decoder spends converting one mOP into uOPs.
    uop_decode_seconds:
        Time a third-level decoder spends translating one uOP.
    """

    fifo_depth: int = DEFAULT_FIFO_DEPTH
    fetch_seconds: float = 8 / 260e6
    mop_decode_seconds: float = 2 / 260e6
    uop_decode_seconds: float = 1 / 260e6


class InstructionDecoder:
    """Builds and runs the timed decoder pipeline for a datapath.

    Usage::

        decoder = InstructionDecoder(datapath, program, config)
        decoder.attach()                      # binds uOP channels to the FUs
        sim = datapath.build_simulator(extra_processes=decoder.processes())
        sim.run()

    The decoder creates one second-level decoder per FU *type* present in the
    program and one third-level decoder per FU targeted by it.  FUs that the
    program never targets are given an immediate exit uOP so the simulation
    still terminates.
    """

    def __init__(
        self,
        datapath: Datapath,
        program: RSNProgram,
        config: Optional[DecoderConfig] = None,
    ):
        self.datapath = datapath
        self.program = program
        self.config = config or DecoderConfig()
        #: FU type -> channel from the top-level decoder to its second-level decoder.
        self._mop_channels: Dict[str, StreamChannel] = {}
        #: FU name -> channel from the second-level decoder to the third-level decoder.
        self._pre_uop_channels: Dict[str, StreamChannel] = {}
        #: FU name -> channel from the third-level decoder into the FU.
        self._uop_channels: Dict[str, StreamChannel] = {}
        #: FU type -> FU names it targets (filled in by :meth:`attach`).
        self._targets_by_type: Dict[str, List[str]] = {}
        self._attached = False

    # ------------------------------------------------------------- plumbing

    def _targeted_fus(self) -> Dict[str, List[str]]:
        """FU type -> FU names targeted anywhere in the program."""
        targeted: Dict[str, List[str]] = {}
        for packet in self.program.packets:
            names = targeted.setdefault(packet.opcode, [])
            for fu_name in packet.targets:
                if fu_name not in names:
                    names.append(fu_name)
        return targeted

    def attach(self) -> None:
        """Create the decoder FIFOs and bind uOP channels to the targeted FUs."""
        if self._attached:
            raise ConfigurationError("decoder already attached")
        depth = self.config.fifo_depth
        targeted = self._targeted_fus()
        self._targets_by_type = targeted
        for fu_type, fu_names in targeted.items():
            self._mop_channels[fu_type] = StreamChannel(
                f"decoder/mop[{fu_type}]", capacity=depth)
            for fu_name in fu_names:
                fu = self.datapath.fu(fu_name)
                pre = StreamChannel(f"decoder/pre-uop[{fu_name}]", capacity=depth)
                post = StreamChannel(f"decoder/uop[{fu_name}]", capacity=depth)
                self._pre_uop_channels[fu_name] = pre
                self._uop_channels[fu_name] = post
                fu.attach_uop_channel(post)
        # FUs never targeted by the program still terminate via a local exit.
        targeted_names = set(self._pre_uop_channels)
        for name, fu in self.datapath.fus.items():
            if name not in targeted_names and fu.uop_channel is None:
                fu.load_program([ExitUOp()])
        self._attached = True

    # ------------------------------------------------------------ processes

    def processes(self) -> List[Tuple[str, Generator[Any, Any, None]]]:
        """All decoder processes to register with the simulator."""
        if not self._attached:
            self.attach()
        processes: List[Tuple[str, Generator[Any, Any, None]]] = [
            ("decoder/top", self._top_level())
        ]
        for fu_type in self._mop_channels:
            processes.append(
                (f"decoder/second[{fu_type}]", self._second_level(fu_type))
            )
        for fu_name in self._pre_uop_channels:
            processes.append((f"decoder/third[{fu_name}]", self._third_level(fu_name)))
        return processes

    def _top_level(self) -> Generator[Any, Any, None]:
        """Fetch packets in program order and route them to second-level decoders."""
        for packet in self.program.packets:
            yield Delay(self.config.fetch_seconds)
            channel = self._mop_channels[packet.opcode]
            yield Write(channel, packet)
        for channel in self._mop_channels.values():
            yield Write(channel, _EndOfStream())

    def _second_level(self, fu_type: str) -> Generator[Any, Any, None]:
        """Expand window/reuse and forward per-FU uOPs for one FU type."""
        channel = self._mop_channels[fu_type]
        fmt = self.program.uop_formats.get(fu_type)
        while True:
            packet = yield Read(channel)
            if isinstance(packet, _EndOfStream):
                break
            expanded = packet.expand(fmt)
            decode_items = packet.reuse * max(packet.window_size, 1)
            yield Delay(self.config.mop_decode_seconds * decode_items)
            # Interleave delivery FU by FU in window order so sibling FUs make
            # progress together rather than one FU receiving its whole program
            # first (which could artificially fill FIFOs).
            sequences = {name: list(uops) for name, uops in expanded.items()}
            remaining = sum(len(s) for s in sequences.values())
            index = 0
            names = list(sequences)
            positions = {name: 0 for name in names}
            while remaining:
                name = names[index % len(names)]
                index += 1
                pos = positions[name]
                if pos < len(sequences[name]):
                    uop = sequences[name][pos]
                    positions[name] = pos + 1
                    remaining -= 1
                    yield Write(self._pre_uop_channels[name], uop)
        for name in self._targets_by_type.get(fu_type, []):
            yield Write(self._pre_uop_channels[name], _EndOfStream())

    def _third_level(self, fu_name: str) -> Generator[Any, Any, None]:
        """Translate uOPs and hand them to the FU's uOP queue."""
        pre = self._pre_uop_channels[fu_name]
        post = self._uop_channels[fu_name]
        while True:
            uop = yield Read(pre)
            if isinstance(uop, _EndOfStream):
                break
            yield Delay(self.config.uop_decode_seconds)
            yield Write(post, uop)

    # -------------------------------------------------------------- analysis

    def channel_names(self) -> List[str]:
        return (
            [c.name for c in self._mop_channels.values()]
            + [c.name for c in self._pre_uop_channels.values()]
            + [c.name for c in self._uop_channels.values()]
        )


class _EndOfStream:
    """Internal sentinel marking the end of a decoder-to-decoder stream."""

    nbytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<end-of-stream>"
