"""Simulation tracing and utilisation reporting.

The paper's evaluation leans on per-FU utilisation and stall accounting
(Table 5b, Table 9, Fig. 16).  :class:`Trace` records engine events when a
simulation is run with tracing enabled, and :class:`UtilizationReport`
post-processes simulator/FU statistics into the quantities the benchmarks
print: busy fraction per FU, achieved FLOPS, bytes moved per channel.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceEvent", "Trace", "UtilizationReport"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulator event."""

    time: float
    kind: str
    process: str
    detail: str = ""


class Trace:
    """An append-only list of simulator events with simple query helpers.

    Tracing every event of a full BERT-Large run is cheap (tens of thousands
    of events) but optional; pass ``trace=None`` to the simulator to disable
    it entirely.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, time: float, kind: str, process: str, detail: str = "") -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, process, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_process(self, process: str) -> List[TraceEvent]:
        return [e for e in self.events if e.process == process]

    def first(self, kind: str, process: Optional[str] = None) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind and (process is None or event.process == process):
                return event
        return None

    def last(self, kind: str, process: Optional[str] = None) -> Optional[TraceEvent]:
        found = None
        for event in self.events:
            if event.kind == kind and (process is None or event.process == process):
                found = event
        return found

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for event in self.events:
            counts[event.kind] += 1
        return dict(counts)


@dataclass
class UtilizationReport:
    """Per-FU and per-channel utilisation derived from a finished simulation.

    Attributes
    ----------
    total_time:
        Simulated end time in seconds.
    fu_busy:
        FU name -> seconds the FU process spent running or transferring.
    fu_blocked:
        FU name -> seconds the FU process spent blocked on streams.
    fu_flops:
        FU name -> floating point operations performed.
    channel_bytes:
        Channel name -> bytes moved.
    """

    total_time: float
    fu_busy: Dict[str, float] = field(default_factory=dict)
    fu_blocked: Dict[str, float] = field(default_factory=dict)
    fu_flops: Dict[str, float] = field(default_factory=dict)
    channel_bytes: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_simulation(cls, datapath: Any, stats: Any) -> "UtilizationReport":
        """Build a report from a :class:`Datapath` and the stats of its run."""
        report = cls(total_time=stats.end_time)
        for name, fu in datapath.fus.items():
            busy, blocked = stats.process_times.get(name, (0.0, 0.0))
            report.fu_busy[name] = busy
            report.fu_blocked[name] = blocked
            report.fu_flops[name] = fu.stats.flops
        for name, channel in datapath.channels.items():
            report.channel_bytes[name] = channel.stats.bytes
        return report

    # ---------------------------------------------------------------- queries

    def busy_fraction(self, fu_name: str) -> float:
        """Fraction of total simulated time the FU was busy (0 when idle run)."""
        if not self.total_time:
            return 0.0
        return self.fu_busy.get(fu_name, 0.0) / self.total_time

    def achieved_flops(self, fu_names: Optional[Iterable[str]] = None) -> float:
        """Aggregate achieved FLOP/s over the whole run for the selected FUs."""
        if not self.total_time:
            return 0.0
        names = list(fu_names) if fu_names is not None else list(self.fu_flops)
        total = sum(self.fu_flops.get(name, 0.0) for name in names)
        return total / self.total_time

    def total_bytes(self, channel_names: Optional[Iterable[str]] = None) -> int:
        names = (
            list(channel_names)
            if channel_names is not None
            else list(self.channel_bytes)
        )
        return sum(self.channel_bytes.get(name, 0) for name in names)

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """``(fu, busy_s, blocked_s, busy_fraction)`` rows sorted by FU name."""
        rows = []
        for name in sorted(self.fu_busy):
            busy = self.fu_busy[name]
            blocked = self.fu_blocked.get(name, 0.0)
            rows.append((name, busy, blocked, self.busy_fraction(name)))
        return rows
