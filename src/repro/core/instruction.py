"""RSN instructions: packets, programs, and their size accounting.

Section 3.3 of the paper describes the RSN instruction stream as a sequence of
"UDP-like instruction packets, each with a 32-bit header and a payload
section".  The header carries

* ``opcode`` -- the FU type the packet targets,
* ``mask`` -- which FUs of that type are selected,
* ``last`` -- signals FU exit,
* ``window_size`` -- the number of macro-operations (mOPs) in the packet, and
* ``reuse`` -- how many times the packet's window is replayed.

The payload is a window of mOPs; each mOP expands to one uOP per selected FU.
Window/reuse is what gives RSN its code-size advantage (Fig. 9): a small
repeated pattern -- "send to FU1 then FU2, 128 times" -- needs one packet with
``window_size=2, reuse=128`` instead of 256 explicit instructions.

This module holds the in-memory representation plus the size/expansion logic;
the timed decoder pipeline lives in :mod:`repro.core.decoder`.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from .exceptions import ConfigurationError
from .uop import ExitUOp, UOp, UOpFormat

__all__ = ["MOp", "InstructionPacket", "RSNProgram", "InstructionSizeReport"]


#: header size in bytes (32-bit header per the paper).
HEADER_BYTES = 4


@dataclass(frozen=True)
class MOp:
    """A macro-operation: one payload entry of an instruction packet.

    An mOP carries the same control fields as the uOP it expands into, plus an
    optional per-FU override map so that a single packet can direct sibling
    FUs to slightly different targets (e.g. MemB0 loads tile 0 while MemB1
    loads tile 1, as in packet 12 of Fig. 10).
    """

    fields: Mapping[str, Any] = field(default_factory=dict)
    nbytes: int = 4
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def fields_for(self, fu_name: str) -> Dict[str, Any]:
        resolved = dict(self.fields)
        resolved.update(self.overrides.get(fu_name, {}))
        return resolved


@dataclass
class InstructionPacket:
    """One RSN instruction packet (header + window of mOPs).

    Parameters
    ----------
    opcode:
        FU type targeted by this packet (``"MME"``, ``"DDR"``, ...).
    targets:
        The FU names selected by the mask, e.g. ``["MemB0", "MemB1"]``.
    mops:
        The payload window.  ``len(mops)`` is the packet's window size.
    reuse:
        Number of times the window is replayed (>= 1).
    last:
        When set, every target FU receives an :class:`ExitUOp` after the
        expanded window.
    label:
        Free-form annotation used by traces and the Fig. 10-style packet
        listings in examples.
    """

    opcode: str
    targets: Sequence[str]
    mops: Sequence[MOp] = field(default_factory=list)
    reuse: int = 1
    last: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.reuse < 1:
            raise ConfigurationError(
                f"packet {self.label or self.opcode!r}: reuse must be >= 1"
            )
        if not self.targets:
            raise ConfigurationError(
                f"packet {self.label or self.opcode!r}: empty target mask"
            )
        self.targets = list(self.targets)
        self.mops = list(self.mops)

    # ----------------------------------------------------------------- sizes

    @property
    def window_size(self) -> int:
        return len(self.mops)

    @property
    def nbytes(self) -> int:
        """Encoded packet size: 32-bit header plus the payload window."""
        return HEADER_BYTES + sum(m.nbytes for m in self.mops)

    # ------------------------------------------------------------- expansion

    def expand(self, uop_format: Optional[UOpFormat] = None) -> Dict[str, List[UOp]]:
        """Expand the packet into per-FU uOP sequences.

        The window is replayed ``reuse`` times; each mOP becomes one uOP per
        target FU.  When a :class:`UOpFormat` is given the uOPs are built
        through it (validating field names and giving exact encoded sizes);
        otherwise generic uOPs with the mOP's fields are produced.
        """
        expanded: Dict[str, List[UOp]] = OrderedDict(
            (name, []) for name in self.targets
        )
        for _ in range(self.reuse):
            for mop in self.mops:
                for fu_name in self.targets:
                    fields = mop.fields_for(fu_name)
                    if uop_format is not None:
                        uop = uop_format.make(**fields)
                    else:
                        uop = UOp(opcode=self.opcode, fields=fields, nbytes=mop.nbytes)
                    expanded[fu_name].append(uop)
        if self.last:
            for fu_name in self.targets:
                expanded[fu_name].append(ExitUOp(opcode="EXIT"))
        return expanded

    @property
    def expanded_uop_count(self) -> int:
        return self.reuse * self.window_size * len(self.targets) + (
            len(self.targets) if self.last else 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InstructionPacket({self.opcode}, targets={list(self.targets)}, "
                f"window={self.window_size}, reuse={self.reuse}, last={self.last})")


@dataclass
class InstructionSizeReport:
    """Per-FU-type instruction and uOP byte counts (the Fig. 9 data)."""

    instruction_bytes: Dict[str, int] = field(default_factory=dict)
    uop_bytes: Dict[str, int] = field(default_factory=dict)
    instruction_counts: Dict[str, int] = field(default_factory=dict)
    uop_counts: Dict[str, int] = field(default_factory=dict)

    def compression_ratio(self, fu_type: str) -> float:
        """Expanded uOP bytes divided by RSN instruction bytes for one FU type."""
        inst = self.instruction_bytes.get(fu_type, 0)
        if not inst:
            return 0.0
        return self.uop_bytes.get(fu_type, 0) / inst

    def total_instruction_bytes(self) -> int:
        return sum(self.instruction_bytes.values())

    def total_uop_bytes(self) -> int:
        return sum(self.uop_bytes.values())

    def fu_types(self) -> List[str]:
        return sorted(set(self.instruction_bytes) | set(self.uop_bytes))


class RSNProgram:
    """An ordered sequence of instruction packets forming one RSN program.

    This is the single fused instruction stream of Section 3.3: the top-level
    decoder walks it in order and forwards each packet to the second-level
    decoder of the targeted FU type.
    """

    def __init__(
        self,
        name: str = "program",
        uop_formats: Optional[Mapping[str, UOpFormat]] = None,
    ):
        self.name = name
        self.packets: List[InstructionPacket] = []
        #: optional per-FU-type uOP encoding formats (exact Fig. 9 sizes).
        self.uop_formats: Dict[str, UOpFormat] = dict(uop_formats or {})

    # -------------------------------------------------------------- building

    def append(self, packet: InstructionPacket) -> InstructionPacket:
        self.packets.append(packet)
        return packet

    def extend(self, packets: Iterable[InstructionPacket]) -> None:
        for packet in packets:
            self.append(packet)

    def emit(
        self,
        opcode: str,
        targets: Sequence[str],
        mops: Sequence[MOp],
        reuse: int = 1,
        last: bool = False,
        label: str = "",
    ) -> InstructionPacket:
        """Create and append a packet in one call."""
        packet = InstructionPacket(
            opcode=opcode,
            targets=targets,
            mops=mops,
            reuse=reuse,
            last=last,
            label=label,
        )
        return self.append(packet)

    def finalize(self, fu_names_by_type: Mapping[str, Sequence[str]]) -> None:
        """Append ``last`` packets for every FU type that has none yet.

        Guarantees that each FU eventually receives an exit uOP so that the
        simulation terminates.
        """
        types_with_last = {p.opcode for p in self.packets if p.last}
        for fu_type, names in fu_names_by_type.items():
            if fu_type not in types_with_last:
                self.emit(
                    fu_type,
                    list(names),
                    mops=[],
                    reuse=1,
                    last=True,
                    label=f"exit-{fu_type}",
                )

    # ------------------------------------------------------------- expansion

    def expand(self) -> Dict[str, List[UOp]]:
        """Statically decode the whole program into per-FU uOP sequences."""
        per_fu: Dict[str, List[UOp]] = OrderedDict()
        for packet in self.packets:
            fmt = self.uop_formats.get(packet.opcode)
            for fu_name, uops in packet.expand(fmt).items():
                per_fu.setdefault(fu_name, []).extend(uops)
        return per_fu

    def load_into(self, datapath: Any) -> None:
        """Pre-store the decoded program into a datapath's FUs.

        This bypasses the timed decoder pipeline; it is the right choice when
        the experiment does not study decoder behaviour (the decoder's
        instruction processing rate is 1.4 MB/s against a 57.6 GB/s datapath,
        i.e. off the critical path -- Section 5.1).
        """
        per_fu = self.expand()
        for fu_name, uops in per_fu.items():
            datapath.fu(fu_name).load_program(uops)
        for name, fu in datapath.fus.items():
            if name not in per_fu and fu.uop_channel is None:
                fu.load_program([ExitUOp()])

    # -------------------------------------------------------------- analysis

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.packets)

    def packets_for_type(self, fu_type: str) -> List[InstructionPacket]:
        return [p for p in self.packets if p.opcode == fu_type]

    def size_report(self) -> InstructionSizeReport:
        """Instruction vs expanded-uOP bytes per FU type (regenerates Fig. 9)."""
        report = InstructionSizeReport()
        inst_bytes: Dict[str, int] = defaultdict(int)
        inst_counts: Dict[str, int] = defaultdict(int)
        uop_bytes: Dict[str, int] = defaultdict(int)
        uop_counts: Dict[str, int] = defaultdict(int)
        for packet in self.packets:
            inst_bytes[packet.opcode] += packet.nbytes
            inst_counts[packet.opcode] += 1
            fmt = self.uop_formats.get(packet.opcode)
            for uops in packet.expand(fmt).values():
                for uop in uops:
                    uop_bytes[packet.opcode] += uop.nbytes
                    uop_counts[packet.opcode] += 1
        report.instruction_bytes = dict(inst_bytes)
        report.instruction_counts = dict(inst_counts)
        report.uop_bytes = dict(uop_bytes)
        report.uop_counts = dict(uop_counts)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RSNProgram({self.name!r}, packets={len(self.packets)}, "
            f"bytes={self.nbytes})"
        )
