"""The datapath: a circuit-switched network of functional units.

The RSN abstraction models the datapath "as a specialized circuit-switched
network of stateful FUs" with data streaming on the edges (Section 3.1).
:class:`Datapath` is the container for that network: it owns the FUs, creates
the stream channels between their ports, validates the topology, and builds a
:class:`~repro.core.engine.Simulator` whose processes are the FU run loops.

The datapath is purely structural -- which paths are *triggered* for a given
computation is decided by the uOP sequences delivered to the FUs (see
:mod:`repro.core.path` and the instruction decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .engine import Simulator
from .exceptions import ConfigurationError
from .functional_unit import FunctionalUnit
from .stream import Port, StreamChannel
from .tracing import Trace

__all__ = ["Datapath", "Edge"]


PortRef = Union[Port, Tuple[FunctionalUnit, str], Tuple[str, str]]


@dataclass(frozen=True)
class Edge:
    """One directed edge of the FU network."""

    source_fu: str
    source_port: str
    sink_fu: str
    sink_port: str
    channel: StreamChannel

    @property
    def name(self) -> str:
        return self.channel.name


class Datapath:
    """A named collection of FUs and the stream channels connecting them.

    Typical construction::

        dp = Datapath("toy")
        fu1, fu2 = LoadFU("FU1"), AddFU("FU2")
        dp.add_fu(fu1)
        dp.add_fu(fu2)
        dp.connect(fu1, "out", fu2, "in", capacity=2, bandwidth=1e9)
    """

    def __init__(self, name: str = "datapath"):
        self.name = name
        self.fus: Dict[str, FunctionalUnit] = {}
        self.channels: Dict[str, StreamChannel] = {}
        self.edges: List[Edge] = []

    # -------------------------------------------------------------- topology

    def add_fu(self, fu: FunctionalUnit) -> FunctionalUnit:
        """Register a functional unit; names must be unique."""
        if fu.name in self.fus:
            raise ConfigurationError(
                f"datapath {self.name!r} already has an FU {fu.name!r}"
            )
        self.fus[fu.name] = fu
        return fu

    def add_fus(self, fus: Iterable[FunctionalUnit]) -> List[FunctionalUnit]:
        return [self.add_fu(fu) for fu in fus]

    def fu(self, name: str) -> FunctionalUnit:
        try:
            return self.fus[name]
        except KeyError:
            raise ConfigurationError(
                f"datapath {self.name!r} has no FU {name!r}; FUs are {sorted(self.fus)}"
            ) from None

    def fus_of_type(self, fu_type: str) -> List[FunctionalUnit]:
        """All FUs whose ``fu_type`` matches, in insertion order."""
        return [fu for fu in self.fus.values() if fu.fu_type == fu_type]

    def _resolve_port(self, ref: PortRef, direction: str) -> Port:
        if isinstance(ref, Port):
            port = ref
        else:
            fu, port_name = ref
            if isinstance(fu, str):
                fu = self.fu(fu)
            port = fu.port(port_name)
        if port.direction != direction:
            raise ConfigurationError(
                f"port {port.qualified_name} is {port.direction}, expected {direction}"
            )
        return port

    def connect(self, source: Union[FunctionalUnit, str], source_port: str,
                sink: Union[FunctionalUnit, str], sink_port: str,
                capacity: Optional[int] = 2, bandwidth: Optional[float] = None,
                latency: float = 0.0, name: Optional[str] = None) -> StreamChannel:
        """Create a stream channel from ``source.source_port`` to ``sink.sink_port``."""
        src = self._resolve_port((source, source_port), Port.OUTPUT)
        dst = self._resolve_port((sink, sink_port), Port.INPUT)
        channel_name = name or f"{src.qualified_name}->{dst.qualified_name}"
        if channel_name in self.channels:
            raise ConfigurationError(f"channel {channel_name!r} already exists")
        channel = StreamChannel(channel_name, capacity=capacity, bandwidth=bandwidth,
                                latency=latency)
        src.bind(channel)
        dst.bind(channel)
        self.channels[channel_name] = channel
        owner_src = src.owner.name if src.owner else "<none>"
        owner_dst = dst.owner.name if dst.owner else "<none>"
        self.edges.append(Edge(owner_src, src.name, owner_dst, dst.name, channel))
        return channel

    # ------------------------------------------------------------ validation

    def unconnected_ports(self) -> List[Port]:
        """Ports declared on FUs but not bound to any channel."""
        loose = []
        for fu in self.fus.values():
            for port in fu.ports.values():
                if not port.is_connected:
                    loose.append(port)
        return loose

    def validate(self, allow_unconnected: bool = True) -> None:
        """Check structural consistency of the network.

        ``allow_unconnected=False`` additionally rejects dangling ports, which
        is useful for fixed overlay datapaths where every declared port should
        have a physical wire behind it.
        """
        for edge in self.edges:
            if edge.source_fu not in self.fus or edge.sink_fu not in self.fus:
                raise ConfigurationError(
                    f"edge {edge.name!r} references an FU not registered in the datapath"
                )
        if not allow_unconnected:
            loose = self.unconnected_ports()
            if loose:
                names = [p.qualified_name for p in loose]
                raise ConfigurationError(f"unconnected ports: {names}")

    # ------------------------------------------------------------ simulation

    def build_simulator(self, trace: Optional[Trace] = None,
                        extra_processes: Optional[Sequence[Tuple[str, Any]]] = None,
                        max_events: int = 50_000_000,
                        max_time: Optional[float] = None) -> Simulator:
        """Create a simulator running every FU plus any ``extra_processes``.

        ``extra_processes`` is a sequence of ``(name, generator)`` pairs, used
        for instruction decoders, off-chip traffic generators, and test
        drivers.
        """
        self.validate()
        simulator = Simulator(trace=trace, max_events=max_events, max_time=max_time)
        for fu in self.fus.values():
            simulator.add_process(fu.name, fu.run())
        for name, generator in (extra_processes or []):
            simulator.add_process(name, generator)
        return simulator

    # --------------------------------------------------------------- queries

    def adjacency(self) -> Dict[str, List[str]]:
        """FU-name -> list of downstream FU names (graph view of the network)."""
        graph: Dict[str, List[str]] = {name: [] for name in self.fus}
        for edge in self.edges:
            graph[edge.source_fu].append(edge.sink_fu)
        return graph

    def describe(self) -> Dict[str, Any]:
        """Structured summary of FUs and edges (used by Fig. 16 reporting)."""
        return {
            "name": self.name,
            "fus": [fu.describe() for fu in self.fus.values()],
            "edges": [
                {
                    "from": f"{e.source_fu}.{e.source_port}",
                    "to": f"{e.sink_fu}.{e.sink_port}",
                    "bandwidth": e.channel.bandwidth,
                    "capacity": e.channel.capacity,
                }
                for e in self.edges
            ],
        }

    def total_stream_bytes(self) -> int:
        """Total bytes moved over all channels in the last simulation."""
        return sum(c.stats.bytes for c in self.channels.values())

    def reset_stats(self) -> None:
        """Clear channel and FU statistics between runs of the same datapath."""
        for channel in self.channels.values():
            channel.stats.__init__()
        for fu in self.fus.values():
            fu.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Datapath({self.name!r}, fus={len(self.fus)}, "
                f"channels={len(self.channels)})")
