"""Exception hierarchy for the RSN core library.

Every error raised by :mod:`repro.core` derives from :class:`RSNError` so that
callers can catch simulation-level failures without masking programming errors
(``TypeError``, ``ValueError`` from NumPy, ...).
"""

from __future__ import annotations


class RSNError(Exception):
    """Base class for all errors raised by the RSN library."""


class ConfigurationError(RSNError):
    """A datapath, FU, or program was constructed inconsistently.

    Examples: connecting a port twice, referencing an unknown FU in an
    instruction packet, or building a simulator from a datapath with dangling
    ports.
    """


class ProtocolError(RSNError):
    """The stream protocol between two FUs was violated.

    The RSN programming model requires the number of sends from a producer
    kernel to exactly match the number of receives in the consumer kernels
    (Section 3.1 of the paper).  A mismatch surfaces either as a deadlock or,
    when a channel is closed while messages remain, as a ``ProtocolError``.
    """


class DeadlockError(RSNError):
    """The simulation can make no further progress but processes remain.

    Carries the list of blocked processes and what each is waiting on, which
    mirrors the deadlock discussion for the instruction decoder in Section 3.3.
    """

    def __init__(self, message: str, blocked: list[tuple[str, str]] | None = None):
        super().__init__(message)
        #: ``(process name, description of what it waits on)`` pairs.
        self.blocked = list(blocked or [])


class StreamClosedError(RSNError):
    """A kernel attempted to read from or write to a closed stream channel."""


class SimulationLimitError(RSNError):
    """The simulation exceeded a configured event or time budget."""
