"""Latency-insensitive stream channels and FU ports.

A stream channel is the edge of the RSN network abstraction: a bounded FIFO
connecting the output port of a producer FU to the input port of a consumer FU.
Communication is *latency-insensitive* (Section 3.1): correctness never depends
on timing, producers stall when the channel is full and consumers stall when it
is empty.

Timing model
------------
Each channel has an optional ``bandwidth`` (bytes per second) and a fixed
per-message ``latency`` (seconds).  Writing a message occupies the producer for
``latency + nbytes / bandwidth`` seconds, after which the message becomes
visible to the consumer.  Reading an available message is instantaneous -- the
transfer cost has already been charged on the producer side, which models a
producer-clocked streaming link without double counting.

The blocking logic itself lives in :mod:`repro.core.engine`; this module only
holds the channel state (queue, capacity, waiter lists, statistics).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from .exceptions import ConfigurationError, StreamClosedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Process
    from .functional_unit import FunctionalUnit

__all__ = ["StreamChannel", "Port", "ChannelStats"]


@dataclass
class ChannelStats:
    """Lifetime statistics of one stream channel."""

    messages: int = 0
    bytes: int = 0
    max_occupancy: int = 0
    writer_block_time: float = 0.0
    reader_block_time: float = 0.0


class StreamChannel:
    """A bounded, latency-insensitive FIFO between two FUs.

    Parameters
    ----------
    name:
        Unique channel name within a datapath.
    capacity:
        Maximum number of in-flight messages (including messages still being
        transferred).  ``None`` means unbounded, which is convenient for
        control channels such as uOP queues.
    bandwidth:
        Link bandwidth in bytes per second; ``None`` means the transfer time is
        just ``latency`` regardless of message size.
    latency:
        Fixed per-message latency in seconds.
    """

    def __init__(
        self,
        name: str,
        capacity: Optional[int] = 2,
        bandwidth: Optional[float] = None,
        latency: float = 0.0,
    ):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"channel {name!r}: capacity must be >= 1 or None")
        if bandwidth is not None and bandwidth <= 0:
            raise ConfigurationError(
                f"channel {name!r}: bandwidth must be positive or None"
            )
        if latency < 0:
            raise ConfigurationError(f"channel {name!r}: latency must be non-negative")
        self.name = name
        self.capacity = capacity
        self.bandwidth = bandwidth
        self.latency = latency
        self.closed = False
        self.stats = ChannelStats()
        #: messages ready to be read.
        self._queue: Deque[Any] = deque()
        #: number of messages currently being transferred (slot reserved).
        self._in_flight = 0
        #: processes blocked waiting for data, woken FIFO.  Deques: the engine
        #: wakes from the left, and ``list.pop(0)`` is O(n) per wake-up.
        self._blocked_readers: Deque["Process"] = deque()
        #: processes blocked waiting for space, with their pending
        #: (message, nbytes), woken FIFO like the readers.
        self._blocked_writers: Deque[Tuple["Process", Any, int]] = deque()
        #: endpoints, filled in by Datapath.connect().
        self.source: Optional["Port"] = None
        self.sink: Optional["Port"] = None

    # -- capacity bookkeeping -------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of messages buffered or in flight."""
        return len(self._queue) + self._in_flight

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and self.occupancy >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across this link."""
        time = self.latency
        if self.bandwidth is not None and nbytes:
            time += nbytes / self.bandwidth
        return time

    # -- queue manipulation (called by the engine) ----------------------------

    def reserve(self) -> None:
        """Reserve a slot for a message whose transfer is starting."""
        self._in_flight += 1

    def deliver(self, message: Any, nbytes: int) -> None:
        """Complete a transfer: the message becomes visible to the consumer."""
        if self.closed:
            raise StreamClosedError(f"channel {self.name!r} is closed")
        self._in_flight -= 1
        self._queue.append(message)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.max_occupancy = max(self.stats.max_occupancy, self.occupancy)

    def pop(self) -> Any:
        """Remove and return the oldest ready message."""
        return self._queue.popleft()

    def peek(self) -> Any:
        """Return the oldest ready message without removing it."""
        return self._queue[0]

    def close(self) -> None:
        """Mark the channel closed; further writes raise :class:`StreamClosedError`."""
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"StreamChannel({self.name!r}, occ={self.occupancy}/{cap})"


class Port:
    """A named endpoint of an FU, bound to at most one stream channel.

    Ports give kernels a stable name to read from or write to (``"lhs_in"``,
    ``"to_mme"``) while the datapath decides which physical channel is behind
    the name.  This is what lets the same FU implementation participate in
    different datapaths.
    """

    INPUT = "input"
    OUTPUT = "output"

    def __init__(
        self, name: str, direction: str, owner: Optional["FunctionalUnit"] = None
    ):
        if direction not in (self.INPUT, self.OUTPUT):
            raise ConfigurationError(
                f"port {name!r}: direction must be 'input' or 'output'"
            )
        self.name = name
        self.direction = direction
        self.owner = owner
        self.channel: Optional[StreamChannel] = None

    @property
    def is_connected(self) -> bool:
        return self.channel is not None

    def bind(self, channel: StreamChannel) -> None:
        if self.channel is not None:
            raise ConfigurationError(
                f"port {self.qualified_name} is already bound to channel "
                f"{self.channel.name!r}"
            )
        self.channel = channel
        if self.direction == self.OUTPUT:
            channel.source = self
        else:
            channel.sink = self

    @property
    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner is not None else "<unbound>"
        return f"{owner}.{self.name}"

    def require_channel(self) -> StreamChannel:
        if self.channel is None:
            raise ConfigurationError(
                f"port {self.qualified_name} is not connected to a channel"
            )
        return self.channel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.qualified_name}, {self.direction})"
