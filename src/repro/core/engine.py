"""Discrete-event simulation engine for RSN datapaths.

The engine executes *processes*: Python generators that yield simulation
requests.  A functional unit's run loop and every kernel it launches are such
generators, which keeps the simulated micro-architecture very close to the
kernel pseudo-code of the paper (Fig. 7b): a kernel literally reads its input
streams, performs a transformation, waits for the time the transformation
would take on the modelled hardware, and writes its output streams.

Supported requests (see :mod:`repro.core.kernel` for the dataclasses):

``Delay(seconds)``
    Suspend the process for a fixed amount of simulated time.
``Write(port, message)``
    Send a message on the stream channel bound to ``port``.  Blocks while the
    channel is full; otherwise occupies the process for the channel's transfer
    time (latency + bytes/bandwidth).
``Read(port)``
    Receive the next message from the channel bound to ``port``.  Blocks until
    a message is available; the received message is the value of the ``yield``
    expression.
``Parallel(branches)``
    Run several sub-generators concurrently and resume when all of them have
    finished.  Used for double-buffered FUs that load a new tile while sending
    the previous one ("load/send operations will be executed in parallel if
    they are both enabled", Fig. 7b).
``Fork(branch)``
    Spawn a sub-generator as an independent process and continue immediately.
``Wait(handle)``
    Block until a previously forked process finishes.

The engine is deliberately self-contained (no ``simpy`` dependency) so the
blocking, back-pressure, and deadlock behaviour that the paper reasons about
in Sections 3.1 and 3.3 is fully visible in this repository.

Hot-path design
---------------
The run loop and the read/write/delay handlers are the throughput floor of
every cycle-level result in this repository, so they avoid per-event work
that the semantics do not require: state accounting skips the float updates
entirely for zero-elapsed transitions (the common case -- a handler always
runs at the same timestamp as the resume that invoked it), channel resolution
and transfer-time arithmetic are inlined instead of routed through helper
methods, ``waiting_on`` strings are formatted lazily (only deadlock reports
and enabled traces ever read them), and every trace hook is guarded by a
single boolean so a trace-less run pays one attribute test per would-be
record.  None of this changes scheduling: events carry the same global
sequence numbers in the same order as the straightforward implementation,
which the determinism suite pins.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from .exceptions import DeadlockError, SimulationLimitError, StreamClosedError
from .kernel import Delay, Fork, Parallel, Read, Wait, Write
from .stream import Port, StreamChannel

__all__ = ["Process", "ProcessHandle", "Simulator", "SimulationStats"]


KernelGenerator = Generator[Any, Any, Any]

#: sentinel distinguishing "resume with no explicit value" from resuming with
#: a legitimate ``None`` (e.g. a ``Wait`` joining a process that returned
#: ``None``, or a ``Read`` delivering a ``None`` message).
_NO_VALUE = object()


@dataclass
class SimulationStats:
    """Aggregate statistics of one simulation run."""

    end_time: float = 0.0
    events: int = 0
    processes: int = 0
    #: per-process ``(busy, blocked)`` seconds.
    process_times: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def busy_time(self, name: str) -> float:
        return self.process_times.get(name, (0.0, 0.0))[0]

    def blocked_time(self, name: str) -> float:
        return self.process_times.get(name, (0.0, 0.0))[1]


class ProcessHandle:
    """Handle returned by :class:`Fork`, used with :class:`Wait`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process

    @property
    def finished(self) -> bool:
        return self.process.finished

    @property
    def result(self) -> Any:
        return self.process.result


#: lazy ``waiting_on`` renderers, keyed by the tag of the pending-wait tuple.
#: The engine stores ``(tag, detail)`` on the hot paths and only formats the
#: human-readable string when a deadlock report or a trace actually reads it.
_WAITING_RENDERERS: Dict[str, Callable[[Any], str]] = {
    "delay": lambda seconds: f"delay {seconds:.3e}s",
    "transfer": lambda name: f"transfer on {name!r}",
    "read": lambda name: f"data on {name!r}",
    "write": lambda name: f"write space on {name!r}",
}


class Process:
    """One schedulable activity inside the simulator.

    A process wraps a generator.  The simulator repeatedly resumes it with the
    value produced by its last request and interprets the next request it
    yields.  Child processes created by :class:`Parallel` and :class:`Fork`
    are ordinary processes whose completion wakes the parent.
    """

    #: process states, used for introspection and deadlock reports.
    READY = "ready"
    RUNNING = "running"
    BLOCKED_READ = "blocked-read"
    BLOCKED_WRITE = "blocked-write"
    BLOCKED_JOIN = "blocked-join"
    DELAYED = "delayed"
    FINISHED = "finished"

    __slots__ = (
        "name",
        "generator",
        "send",
        "parent",
        "state",
        "result",
        "finished",
        "_waiting",
        "outstanding_children",
        "busy_time",
        "blocked_time",
        "last_state_change",
        "on_finish",
    )

    def __init__(
        self,
        name: str,
        generator: KernelGenerator,
        parent: Optional["Process"] = None,
    ):
        self.name = name
        self.generator = generator
        #: bound ``generator.send`` -- resumed once per event, so the method
        #: lookup is hoisted out of the hot loop.
        self.send = generator.send
        self.parent = parent
        self.state = self.READY
        self.result: Any = None
        self.finished = False
        #: what the process is waiting on: ``""``, a pre-formatted string, or
        #: a ``(tag, detail)`` tuple rendered lazily by :attr:`waiting_on`.
        self._waiting: Any = ""
        #: number of outstanding children the process is joined on.
        self.outstanding_children = 0
        #: accumulated busy / blocked simulated time.
        self.busy_time = 0.0
        self.blocked_time = 0.0
        #: simulation time at which the process last changed state.
        self.last_state_change = 0.0
        #: optional callback invoked when the process finishes.
        self.on_finish: List[Callable[["Process"], None]] = []

    @property
    def waiting_on(self) -> str:
        """Human-readable description of what the process is waiting on."""
        waiting = self._waiting
        if waiting.__class__ is str:
            return waiting
        tag, detail = waiting
        return _WAITING_RENDERERS[tag](detail)

    @waiting_on.setter
    def waiting_on(self, value: str) -> None:
        self._waiting = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state})"


#: state groups for time accounting, module-level so the hot paths do not
#: re-build them.  Membership tests compare a handful of interned strings.
_BLOCKED_STATES = (
    Process.BLOCKED_READ,
    Process.BLOCKED_WRITE,
    Process.BLOCKED_JOIN,
)
_BUSY_STATES = (Process.RUNNING, Process.DELAYED)


class Simulator:
    """Event-driven executor for a set of processes communicating over streams.

    Parameters
    ----------
    trace:
        Optional :class:`repro.core.tracing.Trace` collecting events.
    max_events:
        Safety limit on the number of processed events; exceeded limits raise
        :class:`SimulationLimitError` rather than hanging a test run.
    max_time:
        Optional simulated-time budget in seconds.
    fast_zero_delay:
        When true (the default), events scheduled at the current simulation
        time -- read/write completions, forks, joins -- bypass the heap and go
        through a FIFO deque instead.  Event *order* is identical either way
        (entries carry the same global sequence numbers and the run loop merges
        the two queues in ``(time, sequence)`` order); the flag exists so the
        engine-throughput microbenchmark can measure the heap round-trip cost.
    """

    def __init__(
        self,
        trace: Any = None,
        max_events: int = 50_000_000,
        max_time: Optional[float] = None,
        fast_zero_delay: bool = True,
    ):
        self.now = 0.0
        self._trace = trace
        self._tracing = trace is not None
        self.max_events = max_events
        self.max_time = max_time
        self.fast_zero_delay = fast_zero_delay
        #: heap of ``(time, sequence, callback, args)`` entries.
        self._event_queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        #: FIFO of same-shape entries scheduled at the current time.  Times in
        #: the deque are nondecreasing, so its front is always the oldest.
        self._immediate: Deque[Tuple[float, int, Callable[..., None], tuple]] = deque()
        self._sequence = itertools.count()
        self._next_seq = self._sequence.__next__
        self._processes: List[Process] = []
        self._live_processes = 0
        self._events_processed = 0

    @property
    def trace(self) -> Any:
        return self._trace

    @trace.setter
    def trace(self, trace: Any) -> None:
        self._trace = trace
        self._tracing = trace is not None

    # ------------------------------------------------------------------ setup

    def add_process(
        self,
        name: str,
        generator: KernelGenerator,
        parent: Optional[Process] = None,
    ) -> Process:
        """Register a top-level or child process with the simulator."""
        process = Process(name, generator, parent=parent)
        self._processes.append(process)
        self._live_processes += 1
        self._schedule_now(self._resume, process)
        return process

    # ------------------------------------------------------------------- run

    def run(self) -> SimulationStats:
        """Run until all processes finish; return aggregate statistics.

        Raises
        ------
        DeadlockError
            If the event queue drains while processes are still blocked.
        SimulationLimitError
            If the event or time budget is exceeded.
        """
        queue = self._event_queue
        immediate = self._immediate
        heappop = heapq.heappop
        max_time = self.max_time
        max_events = self.max_events
        events_processed = self._events_processed
        try:
            while queue or immediate:
                # Merge the two queues in (time, sequence) order so the event
                # order is exactly the one a single heap would produce.
                if immediate and (not queue or immediate[0] < queue[0]):
                    time, _, callback, args = immediate.popleft()
                else:
                    time, _, callback, args = heappop(queue)
                if max_time is not None and time > max_time:
                    raise SimulationLimitError(
                        f"simulated time limit of {max_time}s exceeded at t={time}"
                    )
                self.now = time
                events_processed += 1
                if events_processed > max_events:
                    raise SimulationLimitError(
                        f"event limit of {max_events} exceeded at t={self.now}"
                    )
                callback(*args)
        finally:
            # The counter is kept in a local for speed; re-sync it on every
            # exit (normal drain, limit errors, exceptions out of callbacks).
            self._events_processed = events_processed
        if self._live_processes:
            blocked = [
                (p.name, p.waiting_on)
                for p in self._processes
                if not p.finished
            ]
            raise DeadlockError(
                "simulation deadlocked: no runnable events but "
                f"{self._live_processes} process(es) remain blocked: {blocked}",
                blocked=blocked,
            )
        return self.stats()

    def stats(self) -> SimulationStats:
        """Snapshot of per-process busy/blocked time and totals."""
        stats = SimulationStats(
            end_time=self.now,
            events=self._events_processed,
            processes=len(self._processes),
        )
        for process in self._processes:
            stats.process_times[process.name] = (
                process.busy_time,
                process.blocked_time,
            )
        return stats

    # ------------------------------------------------------- event scheduling

    def _schedule(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        heapq.heappush(self._event_queue, (time, self._next_seq(), callback, args))

    def _schedule_now(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule an event at the current time without a heap round-trip."""
        if self.fast_zero_delay:
            self._immediate.append((self.now, self._next_seq(), callback, args))
        else:
            heapq.heappush(
                self._event_queue, (self.now, self._next_seq(), callback, args)
            )

    def _record(self, kind: str, process: Process, detail: str = "") -> None:
        if self._trace is not None:
            self._trace.record(self.now, kind, process.name, detail)

    # ----------------------------------------------------- process life-cycle

    def _set_state(self, process: Process, state: str) -> None:
        # Zero-elapsed transitions (a handler running in the same event as
        # the resume that invoked it) skip the accounting entirely; adding
        # 0.0 to the counters would be a no-op anyway.
        elapsed = self.now - process.last_state_change
        if elapsed:
            previous = process.state
            if previous in _BLOCKED_STATES:
                process.blocked_time += elapsed
            elif previous in _BUSY_STATES:
                process.busy_time += elapsed
            process.last_state_change = self.now
        process.state = state

    def _resume(self, process: Process, value: Any = _NO_VALUE) -> None:
        """Advance a process generator by one request.

        ``value`` is the result of the process's last request (a read message,
        join result, ...) and is sent into the generator verbatim -- ``None``
        is a perfectly legitimate message or process result.  The ``_NO_VALUE``
        sentinel marks a plain resume (initial start, delay expiry) with no
        request result to deliver; it sends ``None``, as generators require.
        """
        if process.finished:
            return
        # Inline _set_state(process, RUNNING): this is the single hottest
        # call site, executed once per event.
        elapsed = self.now - process.last_state_change
        if elapsed:
            previous = process.state
            if previous in _BLOCKED_STATES:
                process.blocked_time += elapsed
            elif previous in _BUSY_STATES:
                process.busy_time += elapsed
            process.last_state_change = self.now
        process.state = Process.RUNNING
        try:
            request = process.send(None if value is _NO_VALUE else value)
        except StopIteration as stop:
            self._finish(process, getattr(stop, "value", None))
            return
        # Inline exact-type dispatch (one dict lookup); subclassed request
        # types fall back to the isinstance chain.
        handler = _HANDLERS.get(request.__class__)
        if handler is not None:
            handler(self, process, request)
        else:
            self._dispatch_slow(process, request)

    def _finish(self, process: Process, result: Any) -> None:
        self._set_state(process, Process.FINISHED)
        process.finished = True
        process.result = result
        self._live_processes -= 1
        if self._tracing:
            self._record("finish", process)
        for callback in process.on_finish:
            callback(process)
        process.on_finish.clear()

    # ----------------------------------------------------- request dispatching

    def _dispatch_slow(self, process: Process, request: Any) -> None:
        """isinstance-based dispatch for subclassed request types."""
        if isinstance(request, Delay):
            self._handle_delay(process, request)
        elif isinstance(request, Write):
            self._handle_write(process, request)
        elif isinstance(request, Read):
            self._handle_read(process, request)
        elif isinstance(request, Parallel):
            self._handle_parallel(process, request)
        elif isinstance(request, Fork):
            self._handle_fork(process, request)
        elif isinstance(request, Wait):
            self._handle_wait(process, request)
        else:
            raise TypeError(
                f"process {process.name!r} yielded unsupported request {request!r}"
            )

    def _handle_delay(self, process: Process, request: Delay) -> None:
        seconds = request.seconds
        if seconds < 0:
            raise ValueError(f"process {process.name!r}: negative delay {seconds}")
        # RUNNING -> DELAYED in the same event: zero elapsed by construction.
        process.state = Process.DELAYED
        process._waiting = ("delay", seconds)
        if self._tracing:
            self._record("delay", process, process.waiting_on)
        if seconds:
            heapq.heappush(
                self._event_queue,
                (self.now + seconds, self._next_seq(), self._resume, (process,)),
            )
        else:
            self._schedule_now(self._resume, process)

    # -- stream writes ---------------------------------------------------------

    def _resolve_channel(self, process: Process, port: Any) -> StreamChannel:
        if isinstance(port, StreamChannel):
            return port
        if isinstance(port, Port):
            return port.require_channel()
        raise TypeError(
            f"process {process.name!r} referenced {port!r}; "
            "expected a Port or StreamChannel"
        )

    def _handle_write(self, process: Process, request: Write) -> None:
        # Inline channel resolution: exact-type tests cover every in-repo
        # caller; anything else takes the isinstance slow path.
        port = request.port
        cls = port.__class__
        if cls is Port:
            channel = port.channel
            if channel is None:
                channel = port.require_channel()
        elif cls is StreamChannel:
            channel = port
        else:
            channel = self._resolve_channel(process, port)
        if channel.closed:
            raise StreamClosedError(
                f"process {process.name!r} wrote to closed channel {channel.name!r}"
            )
        message = request.message
        nbytes = getattr(message, "nbytes", 0) or 0
        capacity = channel.capacity
        if (
            capacity is not None
            and len(channel._queue) + channel._in_flight >= capacity
        ):
            # RUNNING -> BLOCKED_WRITE in the same event: zero elapsed.
            process.state = Process.BLOCKED_WRITE
            process._waiting = ("write", channel.name)
            channel._blocked_writers.append((process, message, nbytes))
            if self._tracing:
                self._record("block-write", process, channel.name)
            return
        self._start_transfer(process, channel, message, nbytes)

    def _start_transfer(
        self, process: Process, channel: StreamChannel, message: Any, nbytes: int
    ) -> None:
        channel._in_flight += 1  # reserve the slot (StreamChannel.reserve)
        # Inline channel.transfer_time(nbytes).
        transfer = channel.latency
        bandwidth = channel.bandwidth
        if bandwidth is not None and nbytes:
            transfer += nbytes / bandwidth
        # Full state accounting: a writer woken by _wake_writer arrives here
        # still BLOCKED_WRITE with real elapsed time to account.
        self._set_state(process, Process.DELAYED)
        process._waiting = ("transfer", channel.name)
        if self._tracing:
            self._record("write", process, f"{channel.name} ({nbytes} B)")
        if transfer:
            heapq.heappush(
                self._event_queue,
                (
                    self.now + transfer,
                    self._next_seq(),
                    self._complete_transfer,
                    (process, channel, message, nbytes),
                ),
            )
        else:
            self._schedule_now(
                self._complete_transfer, process, channel, message, nbytes
            )

    def _complete_transfer(
        self, process: Process, channel: StreamChannel, message: Any, nbytes: int
    ) -> None:
        # Inline channel.deliver(message, nbytes).
        if channel.closed:
            raise StreamClosedError(f"channel {channel.name!r} is closed")
        channel._in_flight -= 1
        queue = channel._queue
        queue.append(message)
        stats = channel.stats
        stats.messages += 1
        stats.bytes += nbytes
        occupancy = len(queue) + channel._in_flight
        if occupancy > stats.max_occupancy:
            stats.max_occupancy = occupancy
        self._wake_reader(channel)
        self._resume(process)

    def _wake_reader(self, channel: StreamChannel) -> None:
        if channel._blocked_readers and channel._queue:
            reader = channel._blocked_readers.popleft()
            message = channel._queue.popleft()
            channel.stats.reader_block_time += self.now - reader.last_state_change
            if self._tracing:
                self._record("unblock-read", reader, channel.name)
            self._schedule_now(self._resume, reader, message)
            self._wake_writer(channel)

    def _wake_writer(self, channel: StreamChannel) -> None:
        writers = channel._blocked_writers
        if writers:
            capacity = channel.capacity
            if capacity is None or len(channel._queue) + channel._in_flight < capacity:
                writer, message, nbytes = writers.popleft()
                channel.stats.writer_block_time += self.now - writer.last_state_change
                if self._tracing:
                    self._record("unblock-write", writer, channel.name)
                self._start_transfer(writer, channel, message, nbytes)

    # -- stream reads ----------------------------------------------------------

    def _handle_read(self, process: Process, request: Read) -> None:
        port = request.port
        cls = port.__class__
        if cls is Port:
            channel = port.channel
            if channel is None:
                channel = port.require_channel()
        elif cls is StreamChannel:
            channel = port
        else:
            channel = self._resolve_channel(process, port)
        queue = channel._queue
        if queue:
            message = queue.popleft()
            if self._tracing:
                self._record("read", process, channel.name)
            self._wake_writer(channel)
            self._schedule_now(self._resume, process, message)
            return
        if channel.closed:
            raise StreamClosedError(
                f"process {process.name!r} read from closed, empty channel "
                f"{channel.name!r}"
            )
        # RUNNING -> BLOCKED_READ in the same event: zero elapsed.
        process.state = Process.BLOCKED_READ
        process._waiting = ("read", channel.name)
        channel._blocked_readers.append(process)
        if self._tracing:
            self._record("block-read", process, channel.name)

    # -- structured concurrency ------------------------------------------------

    def _handle_parallel(self, process: Process, request: Parallel) -> None:
        branches = list(request.branches)
        if not branches:
            self._schedule_now(self._resume, process, [])
            return
        results: List[Any] = [None] * len(branches)
        process.outstanding_children = len(branches)
        self._set_state(process, Process.BLOCKED_JOIN)
        process._waiting = f"{len(branches)} parallel branch(es)"

        def make_callback(index: int) -> Callable[[Process], None]:
            def callback(child: Process) -> None:
                results[index] = child.result
                process.outstanding_children -= 1
                if process.outstanding_children == 0:
                    self._schedule_now(self._resume, process, results)
            return callback

        for index, branch in enumerate(branches):
            child = self.add_process(f"{process.name}/p{index}", branch, parent=process)
            child.on_finish.append(make_callback(index))

    def _handle_fork(self, process: Process, request: Fork) -> None:
        child = self.add_process(
            request.name or f"{process.name}/fork", request.branch, parent=process
        )
        handle = ProcessHandle(child)
        self._schedule_now(self._resume, process, handle)

    def _handle_wait(self, process: Process, request: Wait) -> None:
        handle = request.handle
        if handle.finished:
            self._schedule_now(self._resume, process, handle.result)
            return
        self._set_state(process, Process.BLOCKED_JOIN)
        process._waiting = f"join on {handle.process.name!r}"

        def callback(child: Process) -> None:
            self._schedule_now(self._resume, process, child.result)

        handle.process.on_finish.append(callback)


#: exact-type fast dispatch table (see :meth:`Simulator._resume`).
_HANDLERS: Dict[type, Callable[..., None]] = {
    Delay: Simulator._handle_delay,
    Write: Simulator._handle_write,
    Read: Simulator._handle_read,
    Parallel: Simulator._handle_parallel,
    Fork: Simulator._handle_fork,
    Wait: Simulator._handle_wait,
}
