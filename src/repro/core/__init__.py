"""Core RSN abstractions: streams, functional units, datapaths, instructions.

This package implements the architecture-level contribution of the paper
(Section 3): the datapath as a circuit-switched network of stateful functional
units connected by latency-insensitive streams, programmed by triggering paths
and controlled through a hierarchical instruction decoder.  Everything here is
application-agnostic; the RSN-XNN overlay built on top of it lives in
:mod:`repro.xnn`.
"""

from .decoder import DEFAULT_FIFO_DEPTH, DecoderConfig, InstructionDecoder
from .engine import Process, ProcessHandle, SimulationStats, Simulator
from .exceptions import (
    ConfigurationError,
    DeadlockError,
    ProtocolError,
    RSNError,
    SimulationLimitError,
    StreamClosedError,
)
from .functional_unit import FunctionalUnit, FUStats, PassthroughFU
from .instruction import InstructionPacket, InstructionSizeReport, MOp, RSNProgram
from .kernel import Delay, Fork, Parallel, Read, Wait, Write, drain, send_all
from .message import ControlToken, StreamMessage, TileMessage, dtype_size
from .network import Datapath, Edge
from .path import Path, PathProgram
from .stream import ChannelStats, Port, StreamChannel
from .tracing import Trace, TraceEvent, UtilizationReport
from .uop import ExitUOp, FieldSpec, UOp, UOpFormat

__all__ = [
    "ChannelStats",
    "ConfigurationError",
    "ControlToken",
    "Datapath",
    "DeadlockError",
    "DecoderConfig",
    "DEFAULT_FIFO_DEPTH",
    "Delay",
    "Edge",
    "ExitUOp",
    "FieldSpec",
    "Fork",
    "FunctionalUnit",
    "FUStats",
    "InstructionDecoder",
    "InstructionPacket",
    "InstructionSizeReport",
    "MOp",
    "Parallel",
    "PassthroughFU",
    "Path",
    "PathProgram",
    "Port",
    "Process",
    "ProcessHandle",
    "ProtocolError",
    "Read",
    "RSNError",
    "RSNProgram",
    "SimulationLimitError",
    "SimulationStats",
    "Simulator",
    "StreamChannel",
    "StreamClosedError",
    "StreamMessage",
    "TileMessage",
    "Trace",
    "TraceEvent",
    "UOp",
    "UOpFormat",
    "UtilizationReport",
    "Wait",
    "Write",
    "drain",
    "dtype_size",
    "send_all",
]
