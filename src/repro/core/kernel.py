"""Kernel request primitives and helpers.

A *kernel* in RSN is "an atomic step in transforming the FU's internal state"
(Section 3.1).  In this library a kernel is a Python generator that yields the
request objects defined here; the simulation engine interprets them.  The
request set intentionally mirrors the operations that appear in the paper's
kernel pseudo-code (Fig. 6 and Fig. 7b): stream reads, stream writes, and the
time spent transforming data, plus structured concurrency for the
"load and send in parallel" idiom of double-buffered FUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Sequence

__all__ = [
    "Delay",
    "Read",
    "Write",
    "Parallel",
    "Fork",
    "Wait",
    "drain",
    "send_all",
]


@dataclass(frozen=True, slots=True)
class Delay:
    """Suspend the yielding process for ``seconds`` of simulated time."""

    seconds: float


@dataclass(frozen=True, slots=True)
class Read:
    """Receive the next message from the channel behind ``port``.

    The received message is the value of the ``yield`` expression::

        message = yield Read(self.port("lhs_in"))

    Requests are immutable, so a kernel that reads the same port in a loop
    may create the request once and yield the same object every iteration
    (see :meth:`~repro.core.functional_unit.FunctionalUnit.read_request`).
    """

    port: Any


@dataclass(frozen=True, slots=True)
class Write:
    """Send ``message`` on the channel behind ``port``.

    Blocks while the channel is full, then occupies the producer for the
    channel's transfer time.
    """

    port: Any
    message: Any


@dataclass(frozen=True, slots=True)
class Parallel:
    """Run several sub-generators concurrently; resume when all finish.

    The value of the ``yield`` expression is the list of branch results in the
    order the branches were given.
    """

    branches: Sequence[Generator[Any, Any, Any]]


@dataclass(frozen=True, slots=True)
class Fork:
    """Spawn a sub-generator as an independent process and continue."""

    branch: Generator[Any, Any, Any]
    name: str = ""


@dataclass(frozen=True, slots=True)
class Wait:
    """Block until a previously forked process (its handle) finishes."""

    handle: Any


def drain(port: Any, count: int) -> Generator[Any, Any, list]:
    """Read ``count`` messages from ``port`` and return them as a list.

    A convenience for kernels that consume a fixed-length stream, e.g. the
    ``for (i=0; i<N; i++) data = stream.read()`` loops in Fig. 6.
    """
    messages = []
    for _ in range(count):
        message = yield Read(port)
        messages.append(message)
    return messages


def send_all(port: Any, messages: Iterable[Any]) -> Generator[Any, Any, int]:
    """Write every message in ``messages`` to ``port``; return the count."""
    count = 0
    for message in messages:
        yield Write(port, message)
        count += 1
    return count
