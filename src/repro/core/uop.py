"""Micro-operations (uOPs): the unit of control delivered to a functional unit.

In the RSN abstraction (Section 3.1) every functional unit executes a sequence
of *kernels*; each uOP launches a single execution of a kernel and carries only
control information -- what transformation to perform, where to stream data to
or from, and how long each stream is.  uOPs never carry data, which is why they
stay off the critical path.

This module defines the in-memory representation of uOPs together with a small
encoding-size model used by the instruction-overhead analysis (Fig. 9 of the
paper): each field is assigned a bit width and the encoded size of a uOP is the
sum of its field widths rounded up to whole bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["UOp", "ExitUOp", "FieldSpec", "UOpFormat"]


@dataclass(frozen=True)
class FieldSpec:
    """Describes one control-plane field of a uOP.

    Parameters
    ----------
    name:
        Field name as used in :attr:`UOp.fields`.
    bits:
        Encoded width of the field in bits.  Flags are 1 bit, addresses are
        typically 32 bits, stream lengths 16 bits, and so on.
    default:
        Value used when the field is omitted from a uOP.
    """

    name: str
    bits: int
    default: Any = None


@dataclass(frozen=True)
class UOpFormat:
    """Encoding format of uOPs targeting one FU type.

    The format is what the third-level decoders of Section 3.3 implement in
    hardware; in this library it is only used to compute encoded sizes for the
    instruction-overhead experiments and to validate field names.
    """

    fu_type: str
    fields: tuple[FieldSpec, ...]

    @property
    def bits(self) -> int:
        """Total encoded width of a uOP in this format."""
        return sum(f.bits for f in self.fields)

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes (rounded up)."""
        return (self.bits + 7) // 8

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def make(self, **values: Any) -> "UOp":
        """Build a uOP of this format, validating field names and applying defaults."""
        unknown = set(values) - set(self.field_names())
        if unknown:
            raise ValueError(
                f"unknown uOP field(s) {sorted(unknown)} for FU type {self.fu_type!r}; "
                f"valid fields are {list(self.field_names())}"
            )
        resolved = {f.name: values.get(f.name, f.default) for f in self.fields}
        return UOp(opcode=self.fu_type, fields=resolved, nbytes=self.nbytes)


@dataclass(frozen=True)
class UOp:
    """A single micro-operation.

    Attributes
    ----------
    opcode:
        The FU type this uOP targets (e.g. ``"MME"``, ``"DDR"``).
    fields:
        Mapping of control-plane field name to value.  The set of fields for
        each FU type in RSN-XNN follows Table 2 of the paper.
    nbytes:
        Encoded size of the uOP in bytes; used by the Fig. 9 analysis.
    """

    opcode: str
    fields: Mapping[str, Any] = field(default_factory=dict)
    nbytes: int = 4

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self.fields

    def __iter__(self) -> Iterator[str]:
        return iter(self.fields)

    def replace(self, **changes: Any) -> "UOp":
        """Return a copy of this uOP with some fields replaced."""
        new_fields = dict(self.fields)
        new_fields.update(changes)
        return UOp(opcode=self.opcode, fields=new_fields, nbytes=self.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"UOp({self.opcode}: {inner})"


class ExitUOp(UOp):
    """Sentinel uOP directing a functional unit to terminate its process.

    Corresponds to the ``last`` flag in the RSN instruction packet header.
    """

    def __init__(self, opcode: str = "EXIT"):
        super().__init__(opcode=opcode, fields={}, nbytes=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExitUOp({self.opcode})"
