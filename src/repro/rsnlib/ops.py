"""High-level operators accepted by RSNlib.

These mirror the ``RSNlib.nn``-style operators of Fig. 13: a model is a small
tree of Linear / Attention / FeedForward / LayerNorm nodes with explicit
shapes.  They carry no tensors -- they are a *description* that the template
matcher in :mod:`repro.rsnlib.model` checks against the patterns the RSN-XNN
backend supports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Operator", "Linear", "Attention", "FeedForward", "LayerNorm"]


@dataclass(frozen=True)
class Operator:
    """Base class for RSNlib operators."""

    name: str

    def parameter_count(self) -> int:
        return 0


@dataclass(frozen=True)
class Linear(Operator):
    """A fully connected layer ``y = x W + b``."""

    in_features: int = 0
    out_features: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError(f"{self.name}: in/out features must be positive")

    def parameter_count(self) -> int:
        count = self.in_features * self.out_features
        if self.bias:
            count += self.out_features
        return count


@dataclass(frozen=True)
class Attention(Operator):
    """Multi-head self-attention with fused softmax."""

    hidden: int = 0
    num_heads: int = 0

    def __post_init__(self) -> None:
        if self.hidden <= 0 or self.num_heads <= 0:
            raise ValueError(f"{self.name}: hidden and num_heads must be positive")
        if self.hidden % self.num_heads:
            raise ValueError(f"{self.name}: hidden must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads

    def parameter_count(self) -> int:
        # Q, K, V, and output projections with biases.
        return 4 * (self.hidden * self.hidden + self.hidden)


@dataclass(frozen=True)
class FeedForward(Operator):
    """The two-layer MLP of a transformer block with GELU in between."""

    hidden: int = 0
    intermediate: int = 0

    def __post_init__(self) -> None:
        if self.hidden <= 0 or self.intermediate <= 0:
            raise ValueError(f"{self.name}: hidden and intermediate must be positive")

    def parameter_count(self) -> int:
        return (self.hidden * self.intermediate + self.intermediate
                + self.intermediate * self.hidden + self.hidden)


@dataclass(frozen=True)
class LayerNorm(Operator):
    """LayerNorm over the hidden dimension."""

    hidden: int = 0

    def __post_init__(self) -> None:
        if self.hidden <= 0:
            raise ValueError(f"{self.name}: hidden must be positive")

    def parameter_count(self) -> int:
        return 2 * self.hidden
