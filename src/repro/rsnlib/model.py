"""Model description, schedule validation, and compilation to RSN programs.

This is the template-based flow of Section 4.5: the user builds an
:class:`EncoderModel` from RSNlib operators, picks a :class:`Schedule`
(which optimisations to apply, what batch/sequence to run), and
:func:`compile_encoder` checks the description against the patterns the
RSN-XNN backend supports before handing it to the overlay executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..workloads.bert import BertConfig
from ..xnn.codegen import CodegenOptions
from ..xnn.datapath import XNNConfig
from ..xnn.executor import EncoderResult, XNNExecutor
from .ops import Attention, FeedForward, LayerNorm, Operator

__all__ = ["EncoderModel", "Schedule", "ScheduleError", "compile_encoder"]


class ScheduleError(ValueError):
    """The model/schedule combination does not match a supported backend pattern."""


@dataclass
class EncoderModel:
    """A transformer encoder block described with RSNlib operators.

    The canonical pattern (the one the RSN-XNN backend supports) is::

        Attention -> LayerNorm -> FeedForward -> LayerNorm

    built via :meth:`EncoderModel.standard`.  Arbitrary operator sequences can
    be constructed, but :func:`compile_encoder` rejects the ones the backend
    has no template for -- mirroring the paper's template-based validation.
    """

    name: str
    operators: List[Operator] = field(default_factory=list)

    @classmethod
    def standard(cls, name: str, hidden: int, num_heads: int,
                 intermediate: int) -> "EncoderModel":
        """The standard encoder block (what Fig. 13's example code builds)."""
        return cls(name=name, operators=[
            Attention("attention", hidden=hidden, num_heads=num_heads),
            LayerNorm("ln1", hidden=hidden),
            FeedForward("ffn", hidden=hidden, intermediate=intermediate),
            LayerNorm("ln2", hidden=hidden),
        ])

    def add(self, operator: Operator) -> "EncoderModel":
        self.operators.append(operator)
        return self

    def parameter_count(self) -> int:
        return sum(op.parameter_count() for op in self.operators)

    # ------------------------------------------------------------ inspection

    def attention(self) -> Attention:
        for op in self.operators:
            if isinstance(op, Attention):
                return op
        raise ScheduleError(f"model {self.name!r} has no Attention operator")

    def feed_forward(self) -> FeedForward:
        for op in self.operators:
            if isinstance(op, FeedForward):
                return op
        raise ScheduleError(f"model {self.name!r} has no FeedForward operator")


@dataclass(frozen=True)
class Schedule:
    """Execution schedule: problem size plus the optimisation knobs to use."""

    batch: int = 6
    sequence_length: int = 512
    pipeline_attention: bool = True
    interleave_load_store: bool = True
    overlap_prolog_epilog: bool = True
    carry_data: bool = False

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.sequence_length <= 0:
            raise ValueError("batch and sequence_length must be positive")

    def codegen_options(self) -> CodegenOptions:
        return CodegenOptions(
            interleave_load_store=self.interleave_load_store,
            pipeline_attention=self.pipeline_attention,
            overlap_prolog_epilog=self.overlap_prolog_epilog,
        )


def _validate(model: EncoderModel, schedule: Schedule) -> Tuple[Attention, FeedForward]:
    """Template matching: check the model against the supported encoder pattern."""
    kinds = [type(op) for op in model.operators]
    expected = [Attention, LayerNorm, FeedForward, LayerNorm]
    if kinds != expected:
        raise ScheduleError(
            f"model {model.name!r} has operator pattern "
            f"{[k.__name__ for k in kinds]}; the RSN-XNN backend supports "
            f"{[k.__name__ for k in expected]}"
        )
    attention = model.attention()
    ffn = model.feed_forward()
    if attention.hidden != ffn.hidden:
        raise ScheduleError("attention and feed-forward hidden sizes differ")
    if schedule.sequence_length % 16:
        raise ScheduleError("sequence length must be a multiple of 16 for the tiled mapping")
    return attention, ffn


def compile_encoder(model: EncoderModel, schedule: Schedule,
                    xnn_config: Optional[XNNConfig] = None) -> "CompiledEncoder":
    """Validate the model/schedule and bind them to the RSN-XNN backend."""
    attention, ffn = _validate(model, schedule)
    config = BertConfig(hidden=attention.hidden, heads=attention.num_heads,
                        ffn_hidden=ffn.intermediate, layers=1)
    return CompiledEncoder(model=model, schedule=schedule, bert_config=config,
                           xnn_config=xnn_config)


@dataclass
class CompiledEncoder:
    """A validated (model, schedule) pair ready to run on the simulated overlay."""

    model: EncoderModel
    schedule: Schedule
    bert_config: BertConfig
    xnn_config: Optional[XNNConfig] = None

    def run(self) -> EncoderResult:
        """Execute on the simulated RSN-XNN overlay and return the result."""
        config = self.xnn_config or XNNConfig(carry_data=self.schedule.carry_data)
        executor = XNNExecutor(config=config, options=self.schedule.codegen_options())
        return executor.run_encoder(batch=self.schedule.batch,
                                    seq_len=self.schedule.sequence_length,
                                    config=self.bert_config)
