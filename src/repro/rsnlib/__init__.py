"""RSNlib: the domain-specific library of Section 4.5 (Fig. 13).

RSNlib lets a user describe a transformer model with high-level operators and
an execution schedule, validates the description against the patterns the
RSN-XNN backend supports, and compiles it down to the overlay's instruction
programs via :mod:`repro.xnn.codegen`.
"""

from .ops import Attention, FeedForward, LayerNorm, Linear, Operator
from .model import EncoderModel, Schedule, ScheduleError, compile_encoder

__all__ = [
    "Attention",
    "EncoderModel",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "Operator",
    "Schedule",
    "ScheduleError",
    "compile_encoder",
]
